"""Tests for the persistent run store (repro.store).

Covers the durability contract: atomic content-addressed writes,
corruption/truncation detection, schema-version refusal, index
self-healing under concurrent writers, and — the load-bearing one —
that a store-enabled run's artifact fingerprint is bit-identical to the
store-disabled goldens.
"""

from __future__ import annotations

import json
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path

import pytest

from repro.config import quick_config
from repro.experiments.runner import ExperimentRunner
from repro.scenario import ScenarioSpec, stats_fingerprint
from repro.store import (
    RunArtifact,
    RunKey,
    RunStore,
    SCHEMA_VERSION,
    SchemaMismatchError,
    StoreCorruptionError,
    StoreMissError,
    provenance,
)

_GOLDEN_PATH = (
    Path(__file__).resolve().parent.parent
    / "benchmarks"
    / "golden"
    / "suite_quick.json"
)


def tiny_spec(name: str = "tiny", scheme: str = "wb") -> ScenarioSpec:
    """A scenario small enough to simulate in milliseconds."""
    return ScenarioSpec(
        name=name, workload="web", scheme=scheme, base="quick", horizon_intervals=2
    )


def make_artifact(name: str = "tiny", scheme: str = "wb") -> RunArtifact:
    spec = tiny_spec(name, scheme)
    return RunArtifact.from_result(spec, spec.run(), provenance=provenance())


def _write_one(args) -> str:
    """Concurrent-writer worker: open the store fresh and put one artifact."""
    root, name = args
    store = RunStore(root)
    return store.put(make_artifact(name))


class TestRunKey:
    def test_key_is_deterministic_and_content_addressed(self):
        spec = tiny_spec()
        key = RunKey.for_spec(spec)
        assert key == RunKey.for_spec(tiny_spec())
        assert key.schema_version == SCHEMA_VERSION
        assert len(key.digest) == 64

    def test_key_changes_with_spec_config_and_schema(self):
        base = RunKey.for_spec(tiny_spec())
        assert RunKey.for_spec(tiny_spec(scheme="sib")).digest != base.digest
        assert (
            RunKey.for_spec(tiny_spec(), config=quick_config(seed=8)).digest
            != base.digest
        )
        bumped = RunKey(
            spec_key=base.spec_key,
            config_digest=base.config_digest,
            schema_version=SCHEMA_VERSION + 1,
        )
        assert bumped.digest != base.digest

    def test_key_matches_stored_payload(self):
        artifact = make_artifact()
        assert (
            RunKey.for_artifact(artifact).digest
            == RunKey.for_spec(tiny_spec()).digest
        )


class TestRoundTrip:
    def test_put_get_round_trip(self, tmp_path):
        store = RunStore(tmp_path / "store")
        artifact = make_artifact()
        digest = store.put(artifact)
        assert store.contains(digest)
        assert store.contains(RunKey.for_spec(tiny_spec()))
        loaded = store.get(digest)
        # exact payload round-trip (modulo the write's own JSON pass)
        assert loaded.to_dict() == json.loads(json.dumps(artifact.to_dict()))
        assert loaded.name == "tiny"
        assert loaded.latency_summaries()["overall"].count == loaded.completed

    def test_miss_raises_keyerror_subclass(self, tmp_path):
        store = RunStore(tmp_path)
        with pytest.raises(StoreMissError):
            store.get("0" * 64)
        assert not store.contains("0" * 64)

    def test_reput_same_key_overwrites(self, tmp_path):
        store = RunStore(tmp_path)
        artifact = make_artifact()
        assert store.put(artifact) == store.put(artifact)
        assert len(store.digests()) == 1

    def test_put_refuses_mismatched_key(self, tmp_path):
        store = RunStore(tmp_path)
        wrong = RunKey.for_spec(tiny_spec(scheme="sib"))
        with pytest.raises(Exception, match="does not hash"):
            store.put(make_artifact(), key=wrong)

    def test_no_temp_files_left_behind(self, tmp_path):
        store = RunStore(tmp_path)
        store.put(make_artifact())
        leftovers = [p for p in store.runs_dir.iterdir() if p.name.startswith(".tmp")]
        assert leftovers == []


class TestCorruptionDetection:
    def _stored(self, tmp_path) -> tuple[RunStore, str, Path]:
        store = RunStore(tmp_path)
        digest = store.put(make_artifact())
        return store, digest, store.path_for(digest)

    def test_truncated_artifact_detected(self, tmp_path):
        store, digest, path = self._stored(tmp_path)
        path.write_text(path.read_text()[: len(path.read_text()) // 2])
        with pytest.raises(StoreCorruptionError, match="truncated|JSON"):
            store.get(digest)

    def test_bitflip_detected_by_checksum(self, tmp_path):
        store, digest, path = self._stored(tmp_path)
        envelope = json.loads(path.read_text())
        envelope["payload"]["fingerprint"]["completed"] += 1  # silent edit
        path.write_text(json.dumps(envelope))
        with pytest.raises(StoreCorruptionError, match="checksum"):
            store.get(digest)

    def test_renamed_file_detected(self, tmp_path):
        store, digest, path = self._stored(tmp_path)
        alias = "f" * 64
        path.rename(store.path_for(alias))
        with pytest.raises(StoreCorruptionError):
            store.get(alias)

    def test_non_envelope_json_detected(self, tmp_path):
        store, digest, path = self._stored(tmp_path)
        path.write_text(json.dumps({"hello": "world"}))
        with pytest.raises(StoreCorruptionError, match="envelope"):
            store.get(digest)

    def test_schema_version_mismatch_refused(self, tmp_path):
        store, digest, path = self._stored(tmp_path)
        envelope = json.loads(path.read_text())
        envelope["schema_version"] = SCHEMA_VERSION + 1
        path.write_text(json.dumps(envelope))
        # refusal happens before any checksum/payload interpretation
        with pytest.raises(SchemaMismatchError, match="refusing"):
            store.get(digest)

    def test_load_all_skip_mode(self, tmp_path):
        store = RunStore(tmp_path)
        good = store.put(make_artifact("good"))
        bad = store.put(make_artifact("bad", scheme="sib"))
        store.path_for(bad).write_text("{not json")
        with pytest.raises(StoreCorruptionError):
            store.load_all()
        kept = store.load_all(on_error="skip")
        assert set(kept) == {good}


class TestIndex:
    def test_index_tracks_puts(self, tmp_path):
        store = RunStore(tmp_path)
        digest = store.put(make_artifact())
        entries = store.entries()
        assert entries[digest]["name"] == "tiny"
        assert entries[digest]["workload"] == "web"

    def test_index_self_heals_after_deletion(self, tmp_path):
        store = RunStore(tmp_path)
        digest = store.put(make_artifact())
        store.index_path.unlink()
        assert digest in store.entries()

    def test_reindex_reports_corrupt_files(self, tmp_path):
        store = RunStore(tmp_path)
        good = store.put(make_artifact("good"))
        bad = store.put(make_artifact("bad", scheme="sib"))
        store.path_for(bad).write_text("{truncated")
        entries, problems = store.reindex()
        assert good in entries and bad not in entries
        assert bad in problems

    def test_concurrent_writers(self, tmp_path):
        root = str(tmp_path / "shared")
        names = [f"writer{i}" for i in range(6)] + ["writer0"]  # incl. a dup key
        with ProcessPoolExecutor(max_workers=3) as pool:
            digests = list(pool.map(_write_one, [(root, n) for n in names]))
        store = RunStore(root)
        # every artifact is independently readable regardless of index races
        assert set(store.digests()) == set(digests)
        for digest in set(digests):
            store.get(digest)
        entries, problems = store.reindex()
        assert problems == {}
        assert set(entries) == set(digests)


class TestRunnerIntegration:
    def test_write_through_and_read_through(self, tmp_path):
        store = RunStore(tmp_path)
        runner = ExperimentRunner(store=store)
        spec = tiny_spec()
        result = runner.run_spec(spec)
        key = RunKey.for_spec(spec)
        assert store.contains(key)
        artifact = store.get(key)
        assert artifact.fingerprint == stats_fingerprint(result)
        assert artifact.perf["completed_requests"] == result.completed
        # read-through: a fresh runner answers from disk without simulating
        fresh = ExperimentRunner(store=store)
        assert fresh.artifact_for(spec).fingerprint == artifact.fingerprint
        assert fresh._cache == {}  # nothing was simulated

    def test_corrupt_artifact_resimulated_by_artifact_for(self, tmp_path):
        store = RunStore(tmp_path)
        runner = ExperimentRunner(store=store)
        spec = tiny_spec()
        before = runner.artifact_for(spec)
        store.path_for(RunKey.for_spec(spec)).write_text("{nope")
        healed = ExperimentRunner(store=store).artifact_for(spec)
        assert healed.fingerprint == before.fingerprint

    def test_corrupt_artifact_healed_from_memo_cache(self, tmp_path):
        # regression: with the result memo-cached, run_spec never
        # re-simulates, so artifact_for must rewrite the unreadable
        # artifact from the cached result instead of re-raising
        store = RunStore(tmp_path)
        runner = ExperimentRunner(store=store)
        spec = tiny_spec()
        before = runner.artifact_for(spec)  # simulates + memoizes + stores
        store.path_for(RunKey.for_spec(spec)).write_text("{nope")
        healed = runner.artifact_for(spec)  # same runner: memo hit
        assert healed.fingerprint == before.fingerprint
        assert store.get(RunKey.for_spec(spec)).fingerprint == before.fingerprint

    def test_parallel_grid_writes_through(self, tmp_path):
        store = RunStore(tmp_path)
        runner = ExperimentRunner(store=store)
        specs = tiny_spec().sweep(scheme=["wb", "sib", "lbica"])
        results = runner.run_specs(specs, max_workers=2)
        for spec in specs:
            artifact = store.get(RunKey.for_spec(spec))
            assert artifact.fingerprint == stats_fingerprint(results[spec.name])

    def test_store_disabled_results_bit_identical(self):
        spec = tiny_spec()
        assert stats_fingerprint(
            ExperimentRunner(store=None).run_spec(spec)
        ) == stats_fingerprint(spec.run())

    def test_store_enabled_run_matches_committed_golden(self, tmp_path):
        """The fingerprint-equivalence gate: store on == store off == golden."""
        golden = json.loads(_GOLDEN_PATH.read_text())
        store = RunStore(tmp_path)
        runner = ExperimentRunner(
            config=quick_config(golden["seed"]), store=store
        )
        artifact = runner.artifact_for(runner.spec_for("tpcc", "lbica"))
        normalized = json.loads(json.dumps(artifact.fingerprint, sort_keys=True))
        assert normalized == golden["scenarios"]["fig4_single_vm"]


class TestProvenance:
    def test_provenance_fields(self):
        prov = provenance()
        assert prov["repro_version"]
        assert "git_commit" in prov and "created_at" in prov
