"""Integration tests for the figure generators and headline report."""

import pytest

from repro.config import quick_config
from repro.experiments.ablation import run_ablations
from repro.experiments.fig4 import generate_fig4
from repro.experiments.fig5 import generate_fig5
from repro.experiments.fig6 import generate_fig6
from repro.experiments.fig7 import generate_fig7
from repro.experiments.figures import save_figure_artifacts
from repro.experiments.headline import generate_headline
from repro.experiments.runner import ExperimentRunner


@pytest.fixture(scope="module")
def runner():
    return ExperimentRunner(quick_config())


class TestFig4:
    def test_generates_and_checks_pass(self, runner):
        fig = generate_fig4(runner)
        assert fig.figure_id == "fig4"
        assert set(fig.series) == {"tpcc", "mail", "web"}
        assert all(len(s) > 0 for panel in fig.series.values() for s in panel)
        assert fig.all_passed, fig.checks_table()

    def test_artifacts_written(self, runner, tmp_path):
        fig = generate_fig4(runner, workloads=("tpcc",))
        paths = save_figure_artifacts(fig, tmp_path)
        assert any(p.suffix == ".csv" for p in paths)
        assert any(p.suffix == ".txt" for p in paths)
        for p in paths:
            assert p.exists() and p.stat().st_size > 0


class TestFig5:
    def test_generates_and_checks_pass(self, runner):
        fig = generate_fig5(runner)
        assert fig.figure_id == "fig5"
        assert fig.all_passed, fig.checks_table()


class TestFig6:
    def test_policy_sequences_match_paper(self, runner):
        fig = generate_fig6(runner)
        by_name = {c.name: c for c in fig.checks}
        assert by_name["tpcc: policy sequence"].passed
        assert by_name["mail: policy sequence"].passed
        assert by_name["web: policy sequence"].passed

    def test_timelines_exported(self, runner):
        fig = generate_fig6(runner)
        timelines = fig.extra["timelines"]
        assert timelines["tpcc"], "TPC-C must have at least one assignment"
        assert timelines["tpcc"][0][1] == "WO"


class TestFig7:
    def test_bars_and_ordering(self, runner):
        fig = generate_fig7(runner)
        bars = fig.extra["bars"]
        for workload in ("TPCC", "MAIL", "WEB"):
            assert bars[workload]["LBICA"] < bars[workload]["WB"]
            assert bars[workload]["LBICA"] < bars[workload]["SIB"]
        assert fig.all_passed, fig.checks_table()


class TestHeadline:
    def test_directions_hold(self, runner):
        report = generate_headline(runner)
        assert report.all_directions_hold, report.table()
        assert report.avg_cache_cut_vs_sib > 0
        assert report.avg_cache_cut_vs_wb_burst > 0

    def test_table_renders(self, runner):
        table = generate_headline(runner).table()
        assert "H1" in table and "paper" in table


class TestAblation:
    def test_core_variants_run(self):
        # the smallest meaningful subset to keep CI fast
        result = run_ablations(
            "web",
            quick_config(),
            include_replacement_sweep=False,
            include_margin_sweep=False,
        )
        rows = result.rows
        assert "lbica (adaptive)" in rows
        assert "fixed WB" in rows
        assert rows["lbica (adaptive)"]["mean_latency_us"] < rows["fixed WB"]["mean_latency_us"]
        assert "sib (strict WT+WO)" in rows
        assert result.table()
