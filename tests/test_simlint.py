"""simlint: rules, pragmas, baseline ratchet, registry, and the CLI.

Every rule is exercised against a committed bad/good fixture pair under
``tests/fixtures/simlint/`` (linted as source with an explicit module
name, so scoping is under test too), the pragma and baseline mechanics
are covered both at the API and the CLI layer, and the tree itself must
lint clean — the same gate CI's ``static-analysis`` job runs.
"""

import json
from pathlib import Path

import pytest

from repro.devtools.simlint import (
    LintError,
    Rule,
    Violation,
    get_rule,
    lint_paths,
    lint_source,
    register_rule,
    rule_codes,
    rule_descriptions,
)
from repro.devtools.simlint import baseline as baseline_mod
from repro.devtools.simlint import registry as registry_mod
from repro.devtools.simlint.cli import JSON_VERSION, main as lint_main
from repro.devtools.simlint.engine import module_name_for

REPO = Path(__file__).resolve().parents[1]
FIXTURES = Path(__file__).parent / "fixtures" / "simlint"

#: (fixture stem, module the snippet is linted as, expected code).
RULE_FIXTURES = [
    ("sl001", "repro.sim.fixture", "SL001"),
    ("sl002", "repro.cache.fixture", "SL002"),
    ("sl003", "repro.io.fixture", "SL003"),
    ("sl004", "repro.experiments.fixture", "SL004"),
    ("sl005", "repro.schemes.fixture", "SL005"),
    ("sl006", "repro.experiments.fixture", "SL006"),
    ("sl007", "repro.sim.engine", "SL007"),
    ("sl008", "repro.campaign.fixture", "SL008"),
    ("sl009", "benchmarks.suite", "SL009"),
    ("sl010", "repro.sim.engine", "SL010"),
]


def lint_fixture(stem: str, module: str) -> list[Violation]:
    path = FIXTURES / f"{stem}.py"
    return lint_source(path.read_text(), path=path.name, module=module)


# ----------------------------------------------------------------------
# Per-rule fixtures
# ----------------------------------------------------------------------
@pytest.mark.parametrize("stem,module,code", RULE_FIXTURES)
def test_bad_fixture_flags_expected_code(stem, module, code):
    violations = lint_fixture(f"{stem}_bad", module)
    assert violations, f"{stem}_bad.py should violate {code}"
    assert {v.code for v in violations} == {code}


@pytest.mark.parametrize("stem,module,code", RULE_FIXTURES)
def test_good_fixture_is_clean(stem, module, code):
    assert lint_fixture(f"{stem}_good", module) == []


def test_at_least_eight_rules_registered():
    codes = rule_codes()
    assert len(codes) >= 8
    assert list(codes) == sorted(codes)
    # every rule documents itself
    for code, title in rule_descriptions().items():
        assert title, code
        assert get_rule(code).explanation, code


def test_rules_are_scoped_by_module():
    bad = (FIXTURES / "sl001_bad.py").read_text()
    # outside the sim core the same source is fine ...
    assert lint_source(bad, module="repro.analysis.fixture") == []
    # ... as is the one sanctioned randomness module
    assert lint_source(bad, module="repro.sim.rng") == []
    # and non-repro code is out of scope entirely
    assert lint_source(bad, module="scripts.helper") == []


def test_sl007_only_fires_in_hot_functions():
    bad = (FIXTURES / "sl007_bad.py").read_text()
    # same source under a module with no hot-path entries: clean
    assert lint_source(bad, module="repro.sim.fixture") == []
    violations = lint_source(bad, module="repro.sim.engine")
    messages = " ".join(v.message for v in violations)
    assert "lambda" in messages
    assert "nested function" in messages
    assert "schedule_call" in messages


def test_sl009_sanctioned_only_in_the_harness_module():
    bad = (FIXTURES / "sl009_bad.py").read_text()
    # the harness itself may import the profilers ...
    assert lint_source(bad, module="benchmarks.profile") == []
    # ... and library code is in scope like any other module
    assert [v.code for v in lint_source(bad, module="repro.sim.fixture")] == [
        "SL009",
        "SL009",
    ]
    # the sanctioned name is the one the real harness file maps to
    assert (
        module_name_for(REPO / "benchmarks" / "profile.py", REPO)
        == "benchmarks.profile"
    )


def test_benchmarks_tree_lints_clean():
    # CI lints benchmarks/ alongside src/repro; SL009 holds there today.
    assert lint_paths([REPO / "benchmarks"], root=REPO) == []


# ----------------------------------------------------------------------
# Pragmas
# ----------------------------------------------------------------------
def test_pragma_suppresses_on_the_violation_line():
    src = "def f(m):\n    print(m)  # simlint: ignore[SL008] progress\n"
    assert lint_source(src, module="repro.campaign.fixture") == []


def test_pragma_for_a_different_code_does_not_suppress():
    src = "def f(m):\n    print(m)  # simlint: ignore[SL001]\n"
    violations = lint_source(src, module="repro.campaign.fixture")
    assert [v.code for v in violations] == ["SL008"]


def test_pragma_star_and_multi_code_forms():
    star = "def f(m):\n    print(m)  # simlint: ignore[*]\n"
    multi = "def f(m):\n    print(m)  # simlint: ignore[SL001, SL008]\n"
    assert lint_source(star, module="repro.campaign.fixture") == []
    assert lint_source(multi, module="repro.campaign.fixture") == []


def test_pragma_on_a_different_line_does_not_suppress():
    src = "# simlint: ignore[SL008]\ndef f(m):\n    print(m)\n"
    violations = lint_source(src, module="repro.campaign.fixture")
    assert [v.code for v in violations] == ["SL008"]


# ----------------------------------------------------------------------
# Engine plumbing
# ----------------------------------------------------------------------
def test_syntax_error_raises_lint_error():
    with pytest.raises(LintError):
        lint_source("def f(:\n", module="repro.sim.fixture")


def test_module_name_derivation():
    root = Path("/repo")
    assert module_name_for(Path("/repo/src/repro/sim/engine.py"), root) == (
        "repro.sim.engine"
    )
    assert module_name_for(Path("/repo/src/repro/sim/__init__.py"), root) == (
        "repro.sim"
    )
    assert module_name_for(Path("/repo/tests/test_x.py"), root) == "tests.test_x"


def test_violation_rendering_and_json_record():
    v = Violation(path="a.py", line=3, col=4, code="SL008", message="m")
    assert v.render() == "a.py:3:4: SL008 m"
    assert v.to_dict() == {
        "code": "SL008",
        "path": "a.py",
        "line": 3,
        "col": 4,
        "message": "m",
    }


# ----------------------------------------------------------------------
# Rule registry
# ----------------------------------------------------------------------
def test_register_rule_rejects_duplicates_and_junk():
    class Clash(Rule):
        code = "SL001"
        title = "clash"

    with pytest.raises(ValueError, match="already registered"):
        register_rule(Clash)
    with pytest.raises(TypeError):
        register_rule(object)  # type: ignore[arg-type]

    class NoCode(Rule):
        title = "has no code"

    with pytest.raises(ValueError, match="code"):
        register_rule(NoCode)


def test_custom_rule_registration_roundtrip():
    class TodoRule(Rule):
        code = "SL901"
        title = "no TODO markers"
        explanation = "Fixture rule for the registry test."

        def check(self, ctx):
            for lineno, line in enumerate(ctx.source.splitlines(), start=1):
                if "TODO" in line:
                    yield Violation(ctx.path, lineno, 0, self.code, "todo")

    register_rule(TodoRule)
    try:
        assert get_rule("SL901") is TodoRule
        violations = lint_source("x = 1  # TODO later\n", module="repro.sim.f")
        assert [v.code for v in violations] == ["SL901"]
    finally:
        registry_mod._REGISTRY.pop("SL901")


def test_unknown_rule_error_names_the_registry():
    with pytest.raises(ValueError, match="repro.devtools.simlint.registry"):
        get_rule("SL999")


# ----------------------------------------------------------------------
# Baseline ratchet
# ----------------------------------------------------------------------
def _violations(n, path="mod.py", code="SL008"):
    return [Violation(path, 10 + i, 0, code, "m") for i in range(n)]


def test_baseline_counts_key_on_path_and_code():
    counts = baseline_mod.baseline_counts(_violations(2) + _violations(1, "b.py"))
    assert counts == {"mod.py::SL008": 2, "b.py::SL008": 1}


def test_ratchet_blocks_growth():
    result = baseline_mod.compare(_violations(3), {"mod.py::SL008": 2})
    assert not result.ok
    # the *newest* (highest-line) violation is the one past the budget
    assert [v.line for v in result.new] == [12]
    assert result.stale == {}


def test_ratchet_reports_shrinkage_as_stale():
    result = baseline_mod.compare(_violations(1), {"mod.py::SL008": 3})
    assert result.ok
    assert result.stale == {"mod.py::SL008": 2}
    # a fully-fixed file keeps its key visible until the baseline shrinks
    gone = baseline_mod.compare([], {"mod.py::SL008": 3})
    assert gone.ok and gone.stale == {"mod.py::SL008": 3}


def test_baseline_load_missing_corrupt_and_roundtrip(tmp_path):
    assert baseline_mod.load(tmp_path / "absent.json") == {}
    corrupt = tmp_path / "corrupt.json"
    corrupt.write_text("not json")
    with pytest.raises(LintError):
        baseline_mod.load(corrupt)
    illtyped = tmp_path / "illtyped.json"
    illtyped.write_text('{"a.py::SL008": 0}')  # zero counts are ill-typed
    with pytest.raises(LintError):
        baseline_mod.load(illtyped)
    path = tmp_path / "base.json"
    baseline_mod.write(path, {"a.py::SL008": 2})
    assert baseline_mod.load(path) == {"a.py::SL008": 2}


# ----------------------------------------------------------------------
# CLI (exit codes, JSON schema, ratchet end-to-end)
# ----------------------------------------------------------------------
@pytest.fixture
def lint_tree(tmp_path, monkeypatch):
    """A throwaway src/repro tree; returns the bad file's path."""
    pkg = tmp_path / "src" / "repro" / "campaign"
    pkg.mkdir(parents=True)
    bad = pkg / "noisy.py"
    bad.write_text("def f(m):\n    print(m)\n")
    (pkg / "quiet.py").write_text("def f(m):\n    return m\n")
    monkeypatch.chdir(tmp_path)
    return bad


def test_cli_exit_codes(lint_tree, capsys):
    assert lint_main(["src/repro/campaign/quiet.py"]) == 0
    assert "clean" in capsys.readouterr().out
    assert lint_main(["src/repro/campaign/noisy.py"]) == 1
    out = capsys.readouterr().out
    assert "SL008" in out and "noisy.py:2:4" in out
    lint_tree.write_text("def f(:\n")
    assert lint_main(["src/repro/campaign/noisy.py"]) == 2


def test_cli_json_schema(lint_tree, capsys):
    assert lint_main(["--json", "src/repro"]) == 1
    doc = json.loads(capsys.readouterr().out)
    assert doc["version"] == JSON_VERSION
    assert doc["count"] == len(doc["violations"]) == 1
    assert set(doc["rules"]) >= {f"SL00{i}" for i in range(1, 9)}
    assert doc["baseline"] is None and doc["new"] == [] and doc["stale"] == {}
    record = doc["violations"][0]
    assert set(record) == {"code", "path", "line", "col", "message"}
    assert record["path"] == "src/repro/campaign/noisy.py"


def test_cli_baseline_ratchet_end_to_end(lint_tree, tmp_path, capsys):
    base = tmp_path / "baseline.json"
    key = "src/repro/campaign/noisy.py::SL008"
    baseline_mod.write(base, {key: 1})
    # at the baseline: clean
    assert lint_main(["src/repro", "--baseline", str(base)]) == 0
    assert "baseline-clean" in capsys.readouterr().out
    # one more print: the ratchet fails the run
    lint_tree.write_text("def f(m):\n    print(m)\n    print(m)\n")
    assert lint_main(["src/repro", "--baseline", str(base)]) == 1
    assert "new violation" in capsys.readouterr().out
    # fixed entirely: stale headroom is reported, then shrunk away
    lint_tree.write_text("def f(m):\n    return m\n")
    assert lint_main(["src/repro", "--baseline", str(base)]) == 0
    assert "unused" in capsys.readouterr().out
    assert (
        lint_main(["src/repro", "--baseline", str(base), "--update-baseline"]) == 0
    )
    assert baseline_mod.load(base) == {}
    # a corrupt baseline is a hard error, never an empty ratchet
    base.write_text("[]")
    assert lint_main(["src/repro", "--baseline", str(base)]) == 2


def test_cli_update_baseline_requires_baseline(lint_tree):
    with pytest.raises(SystemExit) as exc:
        lint_main(["--update-baseline", "src/repro"])
    assert exc.value.code == 2


def test_cli_explain_and_list_rules(capsys):
    assert lint_main(["--explain", "SL001"]) == 0
    out = capsys.readouterr().out
    assert "SL001" in out and "fingerprint" in out
    assert lint_main(["--explain", "SL999"]) == 2
    assert "unknown rule" in capsys.readouterr().err
    assert lint_main(["--list-rules"]) == 0
    listing = capsys.readouterr().out
    for code in rule_codes():
        assert code in listing


def test_repro_dispatcher_routes_lint(capsys):
    from repro.__main__ import _USAGE, main as repro_main

    assert repro_main(["lint", "--list-rules"]) == 0
    assert "SL001" in capsys.readouterr().out
    assert "lint" in _USAGE


# ----------------------------------------------------------------------
# The tree itself and the committed baseline
# ----------------------------------------------------------------------
def test_src_repro_lints_clean_against_committed_baseline():
    violations = lint_paths([REPO / "src" / "repro"], root=REPO)
    baseline = baseline_mod.load(REPO / "simlint-baseline.json")
    result = baseline_mod.compare(violations, baseline)
    assert result.ok, "\n".join(v.render() for v in result.new)
    assert result.stale == {}, "shrink simlint-baseline.json with --update-baseline"


def test_committed_baseline_is_empty():
    # the tree starts debt-free; the ratchet only ever shrinks from here
    assert baseline_mod.load(REPO / "simlint-baseline.json") == {}


# ----------------------------------------------------------------------
# Typing gate config sanity
# ----------------------------------------------------------------------
def test_mypy_config_covers_the_sim_core():
    tomllib = pytest.importorskip("tomllib")
    with open(REPO / "pyproject.toml", "rb") as fh:
        config = tomllib.load(fh)
    overrides = config["tool"]["mypy"]["overrides"]
    strict = next(o for o in overrides if o.get("disallow_untyped_defs"))
    assert set(strict["module"]) == {
        "repro.sim.*",
        "repro.cache.*",
        "repro.schemes.*",
        "repro.service.*",
        "repro.store.*",
    }
    for flag in (
        "disallow_incomplete_defs",
        "check_untyped_defs",
        "disallow_any_generics",
        "no_implicit_optional",
        "strict_equality",
    ):
        assert strict[flag] is True, flag
    lax = next(o for o in overrides if o.get("ignore_errors"))
    assert not set(strict["module"]) & set(lax["module"])
    pins = (REPO / "requirements-ci.txt").read_text()
    assert "mypy==" in pins, "CI must pin the mypy the gate runs"
