"""Tests for trace replay: capture → serialize → parse → replay."""

import pytest

from repro.config import quick_config
from repro.experiments.system import ExperimentSystem
from repro.io.request import OpTag
from repro.trace.parser import dumps_trace, loads_trace
from repro.trace.records import TraceRecord
from repro.workloads.replay import ReplayWorkload
from repro.workloads.synthetic import mixed_read_write_workload


def rec(time, action="Q", tag=OpTag.READ, is_write=False, lba=0, n=1, op_id=0):
    return TraceRecord(time, "ssd", action, tag, is_write, lba, n, op_id)


class TestReplayFiltering:
    def test_only_application_q_records_kept(self):
        records = [
            rec(1.0, "Q", OpTag.READ),
            rec(2.0, "D", OpTag.READ),  # dropped: dispatch
            rec(3.0, "Q", OpTag.PROMOTE, is_write=True),  # dropped: cache traffic
            rec(4.0, "Q", OpTag.EVICT),  # dropped: cache traffic
            rec(5.0, "Q", OpTag.WRITE, is_write=True),
        ]
        replay = ReplayWorkload(records)
        assert len(replay.records) == 2

    def test_records_sorted_by_time(self):
        records = [rec(5.0, lba=2), rec(1.0, lba=1)]
        replay = ReplayWorkload(records)
        assert [r.lba for r in replay.records] == [1, 2]

    def test_time_scale(self):
        replay = ReplayWorkload([rec(100.0)], time_scale=0.5)
        assert replay.duration_us == 50.0

    def test_invalid_scale_rejected(self):
        with pytest.raises(ValueError):
            ReplayWorkload([], time_scale=0)

    def test_empty_trace_duration_zero(self):
        assert ReplayWorkload([]).duration_us == 0.0


class TestReplayExecution:
    def test_arrivals_at_original_timestamps(self, sim):
        records = [rec(10.0, lba=1), rec(20.0, lba=2)]
        replay = ReplayWorkload(records)
        arrivals = []
        replay.bind(sim, lambda r: arrivals.append((sim.now, r.lba)), None)
        sim.run()
        assert arrivals == [(10.0, 1), (20.0, 2)]
        assert replay.submitted == 2

    def test_replay_has_real_workload_stats(self, sim):
        records = [
            rec(10.0, lba=1),
            rec(20.0, lba=2, tag=OpTag.WRITE, is_write=True),
        ]
        replay = ReplayWorkload(records)
        replay.bind(sim, lambda r: None, None)
        sim.run()
        assert replay.stats.generated == 2
        assert replay.stats.reads == 1
        assert replay.stats.writes == 1
        assert replay.stats.throttled == 0
        assert replay.stats.finished

    def test_replay_run_reports_workload_stats(self):
        """RunResult.workload_stats must not be zero for replay runs."""
        cfg = quick_config()
        workload = mixed_read_write_workload(
            cfg.interval_us, n_intervals=2, cache_blocks=cfg.cache_blocks
        )
        system = ExperimentSystem(workload, "wb", cfg)
        system.run()
        replay = ReplayWorkload(loads_trace(dumps_trace(system.tracer.records)))
        result = ExperimentSystem(replay, "wb", cfg).run()
        assert result.workload_stats["generated"] == len(replay.records)
        assert result.workload_stats["throttled"] == 0

    def test_capture_and_replay_round_trip(self):
        """A captured run replays through a fresh system with the same
        application request count."""
        cfg = quick_config()
        workload = mixed_read_write_workload(
            cfg.interval_us, n_intervals=5, cache_blocks=cfg.cache_blocks
        )
        system = ExperimentSystem(workload, "wb", cfg)
        original = system.run()

        text = dumps_trace(system.tracer.records)
        replay = ReplayWorkload(loads_trace(text))
        replay_system = ExperimentSystem(replay, "lbica", cfg)
        replayed = replay_system.run()

        assert replayed.completed > 0
        # merged multi-block requests make exact equality too strict;
        # the replay must reproduce the application arrival count within
        # the capture buffer's limits
        assert replayed.completed <= len(replay.records)
        assert replayed.completed >= original.completed * 0.5
