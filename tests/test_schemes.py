"""Tests for the pluggable scheme subsystem (``repro.schemes``).

The load-bearing guarantees:

1. the registry is the single source of scheme names (duplicates
   rejected, unknown names error with the registry named and the full
   list shown);
2. the wb/sib/lbica refactor behind the :class:`Scheme` ABC is
   **bit-identical** — pinned against the committed golden fingerprints
   the pre-refactor code produced;
3. the capacity-allocation schemes (``partition`` / ``dynshare``)
   actually partition: per-tenant accounted occupancy never exceeds the
   assigned quota, and both run the multi-VM scenario end to end.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.baselines.sib import SibController
from repro.baselines.wb import WbBaseline
from repro.config import quick_config
from repro.core.lbica import LbicaController
from repro.experiments.runner import ExperimentRunner
from repro.experiments.scheme_compare import generate_scheme_compare
from repro.experiments.system import SCHEMES, ExperimentSystem
from repro.scenario import ScenarioError, ScenarioSpec, stats_fingerprint
from repro.schemes import (
    DynamicShareScheme,
    QuotaAllocator,
    Scheme,
    StaticPartitionScheme,
    get_scheme,
    paper_schemes,
    register_scheme,
    scheme_descriptions,
    scheme_names,
)
from repro.schemes.allocation import fair_shares, proportional_shares
from repro.schemes.dynshare import DynShareConfig
from repro.schemes.partition import PartitionConfig
from repro.schemes.slosteal import SloStealConfig, SloStealScheme

_REPO = Path(__file__).resolve().parent.parent
GOLDEN = json.loads(
    (_REPO / "benchmarks" / "golden" / "suite_quick.json").read_text()
)
SCHEMES_GOLDEN = json.loads(
    (_REPO / "benchmarks" / "golden" / "schemes_quick.json").read_text()
)


def _normalized(stats: dict) -> dict:
    return json.loads(json.dumps(stats, sort_keys=True))


class TestRegistry:
    def test_builtin_names_and_order(self):
        assert scheme_names() == (
            "wb",
            "sib",
            "lbica",
            "partition",
            "dynshare",
            "slosteal",
        )
        assert paper_schemes() == ("wb", "sib", "lbica")
        assert SCHEMES == ("wb", "sib", "lbica")

    def test_get_scheme_resolves_builtins(self):
        assert get_scheme("wb") is WbBaseline
        assert get_scheme("sib") is SibController
        assert get_scheme("lbica") is LbicaController
        assert get_scheme("partition") is StaticPartitionScheme
        assert get_scheme("dynshare") is DynamicShareScheme
        assert get_scheme("slosteal") is SloStealScheme

    def test_unknown_scheme_names_registry_and_lists_entries(self):
        with pytest.raises(ValueError) as err:
            get_scheme("bogus")
        message = str(err.value)
        assert "repro.schemes.registry" in message
        for name in scheme_names():
            assert name in message

    def test_duplicate_registration_rejected(self):
        class FreshScheme(Scheme):
            name = "fresh-test-scheme"

            def start(self):
                pass

        register_scheme(FreshScheme)
        try:
            with pytest.raises(ValueError, match="already registered"):
                register_scheme(FreshScheme)
        finally:
            from repro.schemes.registry import _REGISTRY

            _REGISTRY.pop("fresh-test-scheme", None)

    def test_register_rejects_nameless_and_non_schemes(self):
        class Nameless(Scheme):
            name = ""

        with pytest.raises(ValueError):
            register_scheme(Nameless)
        with pytest.raises(TypeError):
            register_scheme(object)

    def test_descriptions_cover_every_scheme(self):
        descriptions = scheme_descriptions()
        assert set(descriptions) == set(scheme_names())
        assert all(
            text and text != "(no description)" for text in descriptions.values()
        )

    def test_experiment_system_error_names_registry(self):
        with pytest.raises(ValueError, match="repro.schemes.registry"):
            ExperimentSystem.build("tpcc", "bogus", quick_config())

    def test_scenario_spec_error_names_registry(self):
        with pytest.raises(ScenarioError) as err:
            ScenarioSpec.from_dict({"name": "x", "scheme": "bogus"})
        assert "repro.schemes.registry" in str(err.value)
        assert "partition" in str(err.value)


class TestGoldenPin:
    """The registry refactor must not perturb the paper trio by one bit."""

    @pytest.mark.parametrize("scheme", ["wb", "sib", "lbica"])
    def test_trio_matches_pre_refactor_goldens(self, scheme):
        # The committed grid_fanout fingerprints were produced by the
        # pre-registry if/elif construction; the registry-built systems
        # must reproduce them exactly.
        runner = ExperimentRunner(quick_config(GOLDEN["seed"]))
        result = runner.run("tpcc", scheme)
        golden = GOLDEN["scenarios"]["grid_fanout"][f"tpcc/{scheme}"]
        assert _normalized(stats_fingerprint(result)) == golden

    @pytest.mark.parametrize("scheme", ["partition", "dynshare"])
    def test_new_schemes_match_their_goldens(self, scheme):
        spec = ScenarioSpec(
            name="t", workload="consolidated3", scheme=scheme, base="quick"
        )
        fingerprint = _normalized(stats_fingerprint(spec.run()))
        golden = SCHEMES_GOLDEN["scenarios"][f"scheme_matrix[scheme={scheme}]"]
        assert fingerprint == golden


class TestQuotaAllocator:
    def test_admit_until_quota_then_deny(self, store):
        # no recyclable residents (nothing in the store): at quota the
        # admission is denied outright
        allocator = QuotaAllocator(store, default_quota_blocks=2)
        assert allocator.admit(0, 1)
        allocator.note_insert(0, 1)
        assert allocator.admit(0, 2)
        allocator.note_insert(0, 2)
        assert not allocator.admit(0, 3)
        assert allocator.denied == {0: 1}

    def test_resident_blocks_always_admitted(self, store):
        allocator = QuotaAllocator(store, default_quota_blocks=1)
        store.insert(7, 0.0)
        allocator.note_insert(0, 7)
        # at quota, but lba 7 is resident: rewriting it grows nothing
        assert allocator.admit(0, 7)
        assert allocator.recycled == {}

    def test_at_quota_recycles_own_oldest_clean_block(self, store):
        allocator = QuotaAllocator(store, default_quota_blocks=2)
        for lba in (7, 9):
            store.insert(lba, 0.0)
            allocator.note_insert(0, lba)
        # at quota with clean residents: the oldest (7) is recycled so
        # the cache never freezes at saturation
        assert allocator.admit(0, 11)
        assert store.peek(7) is None
        assert store.peek(9) is not None
        assert allocator.recycled == {0: 1}
        assert allocator.occupancy() == {0: 1}
        assert allocator.denied == {}

    def test_all_dirty_share_is_denied(self, store):
        allocator = QuotaAllocator(store, default_quota_blocks=2)
        for lba in (7, 9):
            store.insert(lba, 0.0, dirty=True)
            allocator.note_insert(0, lba)
        # every owned block is dirty: nothing recyclable, denial counted
        assert not allocator.admit(0, 11)
        assert allocator.denied == {0: 1}
        # the flusher marking one clean unblocks the tenant again
        store.mark_clean(7)
        assert allocator.admit(0, 11)
        assert allocator.recycled == {0: 1}

    def test_remove_frees_quota(self, store):
        allocator = QuotaAllocator(store, default_quota_blocks=1)
        allocator.note_insert(0, 1)
        assert not allocator.admit(0, 2)
        allocator.note_remove(1)
        assert allocator.admit(0, 2)
        allocator.note_remove(999)  # unknown blocks are ignored
        assert allocator.occupancy() == {0: 0}

    def test_per_tenant_isolation(self, store):
        allocator = QuotaAllocator(store, default_quota_blocks=1)
        allocator.set_quota(1, 4)
        allocator.note_insert(0, 1)
        assert not allocator.admit(0, 2)
        assert allocator.admit(1, 100)
        assert allocator.quota_for(1) == 4

    def test_share_helpers(self):
        assert fair_shares(4096, 4, 64) == {0: 1024, 1: 1024, 2: 1024, 3: 1024}
        shares = proportional_shares(4096, 3, [2.0], 64)
        assert shares[0] == 2048 and shares[1] == shares[2] == 1024
        with pytest.raises(ValueError):
            proportional_shares(4096, 2, [0.0], 64)


class TestAttachDetach:
    def test_partition_attach_installs_allocator(self):
        system = ExperimentSystem.build(
            "consolidated3", "partition", quick_config()
        )
        scheme = system.balancer
        assert isinstance(scheme, StaticPartitionScheme)
        assert system.controller.allocator is scheme.allocator
        assert set(scheme.shares) == {0, 1, 2}
        scheme.detach()
        assert system.controller.allocator is None
        scheme.detach()  # idempotent

    def test_double_attach_rejected(self):
        system = ExperimentSystem.build("consolidated3", "dynshare", quick_config())
        with pytest.raises(RuntimeError, match="already attached"):
            system.balancer.attach(system)

    def test_trio_schemes_attached_to_system(self):
        for scheme in SCHEMES:
            system = ExperimentSystem.build("tpcc", scheme, quick_config())
            assert system.balancer.system is system
            assert system.controller.allocator is None


class TestPartitionScheme:
    def test_proportional_weights_from_scenario_json(self):
        spec = ScenarioSpec.from_dict(
            {
                "name": "weighted",
                "workload": "consolidated3",
                "scheme": "partition",
                "base": "quick",
                "system": {
                    "partition": {
                        "variant": "proportional",
                        "weights": [2, 1, 1],
                        "min_share_blocks": 128,
                    }
                },
            }
        )
        system = spec.build()
        scheme = system.balancer
        assert scheme.config.variant == "proportional"
        assert scheme.shares[0] == 2 * scheme.shares[1]
        assert scheme.shares[1] == scheme.shares[2]

    def test_invalid_configs_rejected(self):
        with pytest.raises(ValueError):
            PartitionConfig(variant="nope").validate()
        with pytest.raises(ValueError):
            PartitionConfig(weights=[-1.0]).validate()
        with pytest.raises(ValueError):
            DynShareConfig(min_share_blocks=0).validate()
        with pytest.raises(ValueError):
            DynShareConfig(ewma=0.0).validate()

    def test_partition_vs_lbica_smoke_comparison(self):
        """Both schemes run the contended scenario; partitioning caps
        every tenant's accounted occupancy at its share."""
        systems, runs = {}, {}
        for scheme in ("partition", "lbica"):
            spec = ScenarioSpec(
                name=f"smoke_{scheme}",
                workload="consolidated3",
                scheme=scheme,
                base="quick",
                # a small cache forces real contention so admission
                # control actually engages
                system={"cache_blocks": 512},
            )
            systems[scheme] = spec.build()
            runs[scheme] = systems[scheme].run()

        system = systems["partition"]
        partition_result = runs["partition"]
        lbica_result = runs["lbica"]
        assert partition_result.completed > 0
        assert lbica_result.completed > 0

        scheme = system.balancer
        occupancy = scheme.allocator.occupancy()
        for tenant, count in occupancy.items():
            assert count <= scheme.shares[tenant], (tenant, count)
        # the small cache must have produced actual admission pressure:
        # at-quota tenants recycle within their share (or, with an
        # all-dirty share, are denied)
        pressure = scheme.allocator.total_recycled + scheme.allocator.total_denied
        assert pressure > 0
        # the scheme's timeline recorded the whole run
        assert partition_result.scheme_decisions
        stats = partition_result.scheme_stats
        assert stats["total_recycled"] + stats["total_denied"] > 0
        # lbica balances by policy/bypass instead: no allocator installed
        assert lbica_result.scheme_stats["decisions"] > 0


class TestDynamicShareScheme:
    def test_reallocates_under_contention(self):
        spec = ScenarioSpec(
            name="dyn",
            workload="consolidated3",
            scheme="dynshare",
            base="quick",
            system={"cache_blocks": 512},
        )
        system = spec.build()
        result = system.run()
        scheme = system.balancer
        assert result.completed > 0
        assert result.scheme_decisions
        total = sum(scheme.shares.values())
        assert total <= system.store.capacity_blocks
        assert all(
            share >= scheme.config.min_share_blocks
            for share in scheme.shares.values()
        )
        # the run visited enough windows to record observed curves
        assert all(scheme.curves[tid] for tid in scheme.shares)
        assert result.scheme_stats["reallocations"] > 0

    def test_single_tenant_never_moves_shares(self):
        spec = ScenarioSpec(
            name="single", workload="web", scheme="dynshare", base="quick"
        )
        result = spec.run()
        assert result.completed > 0
        assert all(d.moved_blocks == 0 for d in result.scheme_decisions)

    def test_determinism(self):
        spec = ScenarioSpec(
            name="det",
            workload="consolidated3",
            scheme="dynshare",
            base="quick",
            horizon_intervals=20,
        )
        a = stats_fingerprint(spec.run())
        b = stats_fingerprint(spec.run())
        assert _normalized(a) == _normalized(b)


class TestSloStealScheme:
    def test_steals_toward_slo_violator(self):
        from repro.scenario import get_scenario

        system = get_scenario("churn_consolidated").build()
        result = system.run(until_us=60 * system.config.interval_us)
        scheme = system.balancer
        stats = result.scheme_stats
        assert result.completed > 0
        assert stats["declared_targets"] == [0, 1, 2]
        assert stats["reallocations"] > 0
        assert stats["blocks_moved"] > 0
        # every decision moved share from a donor to the worst violator
        for decision in result.scheme_decisions:
            if decision.moved_blocks:
                assert decision.from_tenant != decision.to_tenant
                assert decision.violations
        # shares stay within capacity and above the configured floor
        total = sum(scheme.shares.values())
        assert total <= system.store.capacity_blocks
        assert all(
            share >= scheme.config.min_share_blocks
            for share in scheme.shares.values()
        )

    def test_departed_tenant_leaves_share_map(self):
        from repro.scenario import get_scenario

        system = get_scenario("churn_consolidated").build()
        system.run(until_us=60 * system.config.interval_us)
        scheme = system.balancer
        assert 2 not in scheme.shares
        assert 2 not in scheme.allocator.quotas
        assert scheme.allocator.occupancy().get(2, 0) == 0

    def test_runs_without_declared_slos(self):
        # no targets anywhere: the scheme degrades to latency fairness
        # (fleet-mean p99 ratios) and must still run deterministically
        spec = ScenarioSpec(
            name="nolo",
            workload="consolidated3",
            scheme="slosteal",
            base="quick",
            horizon_intervals=20,
        )
        a = stats_fingerprint(spec.run())
        b = stats_fingerprint(spec.run())
        assert _normalized(a) == _normalized(b)
        assert a["completed"] > 0

    def test_invalid_configs_rejected(self):
        with pytest.raises(ValueError):
            SloStealConfig(decision_interval_us=0.0).validate()
        with pytest.raises(ValueError):
            SloStealConfig(min_share_blocks=0).validate()
        with pytest.raises(ValueError):
            SloStealConfig(max_step_blocks=0).validate()
        with pytest.raises(ValueError):
            SloStealConfig(donor_headroom=1.5).validate()

    def test_detach_removes_completion_hook(self):
        system = ExperimentSystem.build(
            "consolidated3", "slosteal", quick_config()
        )
        hook = system.balancer._record_completion
        assert hook in system.controller._completion_hooks
        system.balancer.detach()
        assert hook not in system.controller._completion_hooks
        assert system.controller.allocator is None


class TestSchemeCompare:
    def test_five_scheme_table(self):
        runner = ExperimentRunner(quick_config())
        comparison = generate_scheme_compare(runner, workloads=("web",))
        assert comparison.schemes == scheme_names()
        table = comparison.table()
        for scheme in scheme_names():
            assert scheme in table
        assert comparison.all_passed, comparison.checks_table()


class TestCli:
    def test_list_schemes_flag(self, capsys):
        from repro.experiments.cli import main

        assert main(["--list-schemes"]) == 0
        out = capsys.readouterr().out
        for name in scheme_names():
            assert name in out

    def test_repro_dispatcher_forwards_flags(self, capsys):
        from repro.__main__ import main

        assert main(["--list-schemes"]) == 0
        out = capsys.readouterr().out
        assert "dynshare" in out

    def test_schemes_target_accepted_by_parser(self):
        from repro.experiments.cli import build_parser

        assert build_parser().parse_args(["schemes"]).target == "schemes"
