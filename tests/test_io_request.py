"""Unit tests for requests and device operations."""

import pytest

from repro.io.request import BLOCK_BYTES, DeviceOp, OpTag, Request


class TestRequest:
    def test_basic_fields(self):
        req = Request(10.0, lba=100, nblocks=4, is_write=False)
        assert req.lba == 100
        assert req.end_lba == 104
        assert not req.is_write
        assert not req.done

    def test_ids_monotonic(self):
        a = Request(0.0, 0, 1, False)
        b = Request(0.0, 0, 1, False)
        assert b.req_id > a.req_id

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ValueError):
            Request(0.0, 0, 0, False)
        with pytest.raises(ValueError):
            Request(0.0, -1, 1, False)

    def test_completion_after_all_sync_ops(self):
        req = Request(5.0, 0, 2, True)
        req.add_wait(2)
        assert not req.op_done(8.0)
        assert req.op_done(9.0)
        assert req.done
        assert req.latency == 4.0

    def test_completion_callback_fires_once(self):
        calls = []
        req = Request(0.0, 0, 1, False, on_complete=calls.append)
        req.add_wait(1)
        req.op_done(3.0)
        assert calls == [req]

    def test_completion_underflow_raises(self):
        req = Request(0.0, 0, 1, False)
        req.add_wait(1)
        req.op_done(1.0)
        with pytest.raises(RuntimeError):
            req.op_done(2.0)

    def test_latency_before_completion_raises(self):
        req = Request(0.0, 0, 1, False)
        with pytest.raises(RuntimeError):
            _ = req.latency

    def test_block_bytes_constant(self):
        assert BLOCK_BYTES == 4096


class TestDeviceOp:
    def test_tags_are_paper_letters(self):
        assert OpTag.READ.value == "R"
        assert OpTag.WRITE.value == "W"
        assert OpTag.PROMOTE.value == "P"
        assert OpTag.EVICT.value == "E"

    def test_end_lba(self):
        op = DeviceOp(10, 3, is_write=False, tag=OpTag.READ)
        assert op.end_lba == 13

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            DeviceOp(0, 0, is_write=False, tag=OpTag.READ)

    def test_queue_time_requires_dispatch(self):
        op = DeviceOp(0, 1, is_write=False, tag=OpTag.READ)
        with pytest.raises(RuntimeError):
            _ = op.queue_time
        op.enqueue_time = 1.0
        op.dispatch_time = 4.0
        assert op.queue_time == 3.0

    def test_service_latency_requires_completion(self):
        op = DeviceOp(0, 1, is_write=False, tag=OpTag.READ)
        op.enqueue_time = 1.0
        with pytest.raises(RuntimeError):
            _ = op.service_latency
        op.complete_time = 6.0
        assert op.service_latency == 5.0


class TestMerging:
    def test_contiguous_same_tag_merges(self):
        a = DeviceOp(0, 2, is_write=True, tag=OpTag.WRITE)
        b = DeviceOp(2, 2, is_write=True, tag=OpTag.WRITE)
        assert a.can_merge_back(b, max_blocks=8)
        a.absorb(b)
        assert a.nblocks == 4
        assert b in a.merged

    def test_non_contiguous_does_not_merge(self):
        a = DeviceOp(0, 2, is_write=True, tag=OpTag.WRITE)
        b = DeviceOp(5, 2, is_write=True, tag=OpTag.WRITE)
        assert not a.can_merge_back(b, max_blocks=8)

    def test_different_direction_does_not_merge(self):
        a = DeviceOp(0, 2, is_write=True, tag=OpTag.WRITE)
        b = DeviceOp(2, 2, is_write=False, tag=OpTag.READ)
        assert not a.can_merge_back(b, max_blocks=8)

    def test_different_tag_does_not_merge(self):
        a = DeviceOp(0, 2, is_write=True, tag=OpTag.WRITE)
        b = DeviceOp(2, 2, is_write=True, tag=OpTag.PROMOTE)
        assert not a.can_merge_back(b, max_blocks=8)

    def test_merge_bound_respected(self):
        a = DeviceOp(0, 6, is_write=True, tag=OpTag.WRITE)
        b = DeviceOp(6, 4, is_write=True, tag=OpTag.WRITE)
        assert not a.can_merge_back(b, max_blocks=8)
        assert a.can_merge_back(b, max_blocks=16)
