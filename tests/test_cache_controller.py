"""Unit tests for the cache datapath: routing under each write policy."""


from repro.cache.controller import CacheController
from repro.cache.store import CacheStore
from repro.cache.write_policy import WritePolicy, behavior_for
from repro.io.request import OpTag, Request


def submit_and_run(sim, controller, lba, nblocks=1, is_write=False):
    req = Request(sim.now, lba, nblocks, is_write)
    controller.submit(req)
    sim.run()
    return req


class TestPolicyBehaviors:
    def test_behavior_table_matches_paper(self):
        wb = behavior_for(WritePolicy.WB)
        assert wb.cache_writes and not wb.writes_through and wb.writes_dirty
        assert wb.promote_on_miss
        wt = behavior_for(WritePolicy.WT)
        assert wt.cache_writes and wt.writes_through and not wt.writes_dirty
        ro = behavior_for(WritePolicy.RO)
        assert not ro.cache_writes and ro.invalidate_on_write and ro.promote_on_miss
        wo = behavior_for(WritePolicy.WO)
        assert wo.cache_writes and not wo.promote_on_miss

    def test_with_promotion_override(self):
        wt = behavior_for(WritePolicy.WT).with_promotion(False)
        assert not wt.promote_on_miss
        assert behavior_for(WritePolicy.WT).promote_on_miss  # original untouched


class TestReads:
    def test_read_hit_served_by_ssd(self, sim, controller, store, ssd, hdd):
        store.insert(10, 0.0)
        req = submit_and_run(sim, controller, 10)
        assert req.done
        assert req.served_by == {"ssd"}
        assert ssd.stats.reads == 1
        assert hdd.stats.reads == 0

    def test_read_miss_served_by_hdd_and_promoted(self, sim, controller, store, ssd, hdd):
        req = submit_and_run(sim, controller, 10)
        assert req.done
        assert req.served_by == {"hdd"}
        assert hdd.stats.reads == 1
        assert 10 in store  # promoted
        assert ssd.stats.completions_by_tag.get("P") == 1

    def test_wo_read_miss_not_promoted(self, sim, controller, store, hdd):
        controller.set_policy(WritePolicy.WO)
        req = submit_and_run(sim, controller, 10)
        assert req.done
        assert 10 not in store
        assert controller.stats.promotes_issued == 0

    def test_multiblock_read_mixed_hit_miss(self, sim, controller, store, ssd, hdd):
        store.insert(10, 0.0)
        store.insert(12, 0.0)
        req = submit_and_run(sim, controller, 10, nblocks=4)
        assert req.done
        assert req.served_by == {"ssd", "hdd"}
        assert controller.stats.read_hit_blocks == 2
        assert controller.stats.read_miss_blocks == 2


class TestWritesWB:
    def test_write_cached_dirty(self, sim, controller, store, ssd, hdd):
        req = submit_and_run(sim, controller, 20, is_write=True)
        assert req.done
        assert req.served_by == {"ssd"}
        block = store.peek(20)
        assert block is not None and block.dirty
        assert hdd.stats.writes == 0

    def test_dirty_eviction_generates_e_traffic(self, sim, ssd, hdd):
        store = CacheStore(8, associativity=1)
        controller = CacheController(sim, ssd, hdd, store)
        s = store.num_sets
        submit_and_run(sim, controller, 0, is_write=True)
        submit_and_run(sim, controller, s, is_write=True)  # evicts dirty 0
        assert controller.stats.evict_flushes == 1
        assert ssd.stats.completions_by_tag.get("E") == 1  # evict read
        assert hdd.stats.completions_by_tag.get("E") == 1  # write-back


class TestWritesWT:
    def test_write_mirrored_to_both(self, sim, controller, store, ssd, hdd):
        controller.set_policy(WritePolicy.WT)
        req = submit_and_run(sim, controller, 20, is_write=True)
        assert req.done
        assert req.served_by == {"ssd", "hdd"}
        block = store.peek(20)
        assert block is not None and not block.dirty

    def test_wt_completion_waits_for_slowest_leg(self, sim, controller, ssd, hdd):
        controller.set_policy(WritePolicy.WT)
        req = submit_and_run(sim, controller, 20, is_write=True)
        # HDD cached write (400µs) is slower than an idle SSD write (250µs)
        assert req.latency >= max(
            ssd.model.nominal_write_us, hdd.model.nominal_write_us
        ) * 0.9


class TestWritesRO:
    def test_write_bypasses_to_hdd_and_invalidates(self, sim, controller, store, ssd, hdd):
        store.insert(20, 0.0)
        controller.set_policy(WritePolicy.RO)
        req = submit_and_run(sim, controller, 20, is_write=True)
        assert req.done
        assert req.served_by == {"hdd"}
        assert 20 not in store
        assert ssd.stats.writes == 0
        assert controller.stats.writes_bypassed == 1

    def test_ro_reads_still_promote(self, sim, controller, store):
        controller.set_policy(WritePolicy.RO)
        submit_and_run(sim, controller, 30)
        assert 30 in store


class TestPolicySwitching:
    def test_switch_logged_and_counted(self, sim, controller):
        assert controller.set_policy(WritePolicy.RO)
        assert controller.stats.policy_switches == 1
        assert controller.policy is WritePolicy.RO
        assert [p.policy for p in controller.stats.policy_log] == [
            WritePolicy.WB,
            WritePolicy.RO,
        ]

    def test_noop_switch_returns_false(self, sim, controller):
        assert not controller.set_policy(WritePolicy.WB)
        assert controller.stats.policy_switches == 0

    def test_promotion_override_is_a_change(self, sim, controller):
        assert controller.set_policy(WritePolicy.WB, promote_on_miss=False)
        assert controller.behavior.promote_on_miss is False


class TestRedirection:
    def test_redirect_write_moves_to_hdd_and_invalidates(
        self, sim, controller, store, ssd, hdd
    ):
        req = Request(0.0, 40, 1, True)
        controller.submit(req)
        # steal the pending SSD write before it is dispatched... it may be
        # in flight already (depth 1, submitted immediately); use a second
        # one that queues behind it.
        req2 = Request(0.0, 50, 1, True)
        controller.submit(req2)
        stolen = ssd.queue.steal_tail(1, 0.0, predicate=controller.op_redirectable)
        assert len(stolen) == 1
        controller.redirect_to_disk(stolen[0])
        sim.run()
        assert req2.done
        assert req2.bypassed
        assert 50 not in store
        assert hdd.stats.writes == 1

    def test_redirect_promote_cancels(self, sim, controller, store, ssd):
        # a miss read that promotes, then steal the promotion
        req = Request(0.0, 60, 1, False)
        controller.submit(req)
        # run until the HDD read completes and the P op is enqueued
        while not req.done:
            sim.step()
        pending_p = [op for op in ssd.queue.pending_ops() if op.tag is OpTag.PROMOTE]
        if pending_p:
            controller.redirect_to_disk(pending_p[0])
            ssd.queue.pending.remove(pending_p[0])
            assert 60 not in store
            assert controller.stats.promotes_cancelled >= 1

    def test_wt_redirect_completes_for_free(self, sim, controller, store, ssd, hdd):
        controller.set_policy(WritePolicy.WT)
        r1 = Request(0.0, 70, 1, True)
        r2 = Request(0.0, 80, 1, True)
        controller.submit(r1)
        controller.submit(r2)
        stolen = ssd.queue.steal_tail(1, 0.0, predicate=controller.op_redirectable)
        assert stolen
        hdd_writes_before = hdd.queue.stats.enqueued
        controller.redirect_to_disk(stolen[0])
        # no *extra* HDD op: the WT mirror is already in flight
        assert hdd.queue.stats.enqueued == hdd_writes_before
        sim.run()
        assert r2.done

    def test_op_redirectable_rules(self, sim, controller, store):
        from repro.io.request import DeviceOp

        w = DeviceOp(0, 1, is_write=True, tag=OpTag.WRITE)
        p = DeviceOp(0, 1, is_write=True, tag=OpTag.PROMOTE)
        e = DeviceOp(0, 1, is_write=False, tag=OpTag.EVICT)
        r = DeviceOp(5, 1, is_write=False, tag=OpTag.READ)
        assert controller.op_redirectable(w)
        assert controller.op_redirectable(p)
        assert not controller.op_redirectable(e)
        assert controller.op_redirectable(r)  # block absent → clean
        store.insert(5, 0.0, dirty=True)
        assert not controller.op_redirectable(r)  # dirty block: SSD only


class TestBackgroundFlush:
    def test_flush_block_cleans(self, sim, controller, store, ssd, hdd):
        submit_and_run(sim, controller, 90, is_write=True)
        assert store.peek(90).dirty
        assert controller.flush_block(90)
        sim.run()
        assert not store.peek(90).dirty
        assert hdd.stats.completions_by_tag.get("E") == 1

    def test_flush_clean_block_is_noop(self, sim, controller, store):
        store.insert(91, 0.0)
        assert not controller.flush_block(91)

    def test_flush_absent_block_is_noop(self, sim, controller):
        assert not controller.flush_block(12345)

    def test_double_flush_guard(self, sim, controller, store):
        submit_and_run(sim, controller, 92, is_write=True)
        assert controller.flush_block(92)
        assert not controller.flush_block(92)  # already in flight


class TestCompletionHooks:
    def test_hooks_fire_per_request(self, sim, controller):
        seen = []
        controller.add_completion_hook(seen.append)
        req = submit_and_run(sim, controller, 100, is_write=True)
        assert seen == [req]

    def test_stats_latency_accumulates(self, sim, controller):
        submit_and_run(sim, controller, 100, is_write=True)
        submit_and_run(sim, controller, 101, is_write=True)
        assert controller.stats.completed == 2
        assert controller.stats.mean_latency > 0
