"""Tests for the runtime observability layer (repro.obs).

The acceptance-critical behaviors: arming telemetry must not change
simulation results (stats fingerprints and event counts are identical
with obs on or off), exported traces must be valid Chrome trace-event
JSON, and the metrics series must be deterministic across runs once
wall-clock fields are stripped.
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.campaign import (
    CampaignSpec,
    campaign_status,
    run_campaign,
    status_table,
)
from repro.campaign.cli import main as campaign_main
from repro.campaign.report import ScenarioStatus
from repro.config import SystemConfig
from repro.experiments.runner import run_perf_counters
from repro.obs import (
    TRACE_REQUIRED_FIELDS,
    Histogram,
    MetricsHub,
    ObsConfig,
    SpanTracer,
    strip_wall,
)
from repro.obs.cli import main as obs_main
from repro.scenario.fingerprint import stats_fingerprint
from repro.scenario.registry import get_scenario
from repro.scenario.spec import ScenarioError, ScenarioSpec
from repro.sim.engine import Simulator
from repro.store import RunArtifact, RunStore


def _short_spec(name: str, horizon: int) -> ScenarioSpec:
    """A registered scenario truncated for test speed (quick base)."""
    return dataclasses.replace(
        get_scenario(name), base="quick", horizon_intervals=horizon
    )


def _run_with_obs(spec: ScenarioSpec, **obs):
    """Run ``spec`` with telemetry armed; returns (system, result)."""
    spec = dataclasses.replace(spec, obs={"enabled": True, **obs})
    cfg = spec.to_config()
    system = spec.build(cfg, trace_records=False)
    until = None
    if spec.horizon_intervals is not None:
        until = spec.horizon_intervals * cfg.interval_us
    return system, system.run(until_us=until)


class TestFingerprintEquivalence:
    """Telemetry on vs off: bit-identical simulation results."""

    def test_fig4_single_vm(self):
        spec = _short_spec("fig4_single_vm", horizon=6)
        baseline = spec.run()
        _, observed = _run_with_obs(spec, metrics=True, trace=True)
        assert stats_fingerprint(observed) == stats_fingerprint(baseline)
        assert observed.events_processed == baseline.events_processed

    def test_churn_consolidated(self):
        spec = _short_spec("churn_consolidated", horizon=10)
        baseline = spec.run()
        system, observed = _run_with_obs(spec, metrics=True, trace=True)
        assert stats_fingerprint(observed) == stats_fingerprint(baseline)
        assert observed.events_processed == baseline.events_processed
        # The multi-tenant snapshot path: slosteal wires a quota
        # allocator and an SLO monitor, both sampled per interval.
        last = system.telemetry.hub.series[-1]
        assert last["tenants"]
        assert any("quota" in entry for entry in last["tenants"].values())
        assert "tenants" in last["slo"]

    def test_engine_live_counter_mode_matches_batch_loop(self):
        def drive(live: bool):
            sim = Simulator()
            sim.live_counters = live
            fired = []
            sim.schedule(5.0, fired.append, "late")
            sim.schedule(2.0, fired.append, "early")
            for i in range(4):
                sim.schedule(3.0, fired.append, i)
            sim.schedule(2.0, lambda: sim.schedule(0.5, fired.append, "mid"))
            sim.run()
            return fired, sim.now, sim.events_processed

        assert drive(live=True) == drive(live=False)

    def test_live_counters_visible_mid_run(self):
        sim = Simulator()
        sim.live_counters = True
        seen = []
        sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: seen.append(sim.events_processed))
        sim.run()
        # The batch loop would report 0 here; live mode counts as it pops.
        assert seen == [2]


class TestMetricsSeries:
    def test_deterministic_after_strip_wall(self):
        spec = _short_spec("fig4_single_vm", horizon=5)
        sys_a, _ = _run_with_obs(spec, metrics=True)
        sys_b, _ = _run_with_obs(spec, metrics=True)
        rows_a = [strip_wall(r) for r in sys_a.telemetry.hub.series]
        rows_b = [strip_wall(r) for r in sys_b.telemetry.hub.series]
        assert rows_a and rows_a == rows_b

    def test_row_shape_and_jsonl_round_trip(self):
        spec = _short_spec("fig4_single_vm", horizon=4)
        system, result = _run_with_obs(spec, metrics=True)
        telemetry = system.telemetry
        rows = telemetry.hub.series
        assert len(rows) == 4
        for row in rows:
            assert set(row) >= {
                "interval", "t_us", "events", "events_total", "completed",
                "queues", "cache", "tenants", "slo", "wall",
            }
            assert set(row["queues"]) == {"ssd", "hdd"}
            assert 0.0 <= row["cache"]["dirty_ratio"] <= 1.0
            assert row["wall"]["s"] >= 0.0
        assert rows[-1]["events_total"] <= result.events_processed
        parsed = [
            json.loads(line) for line in telemetry.metrics_jsonl().splitlines()
        ]
        assert parsed == [json.loads(json.dumps(r)) for r in rows]

    def test_hub_summary_instruments(self):
        spec = _short_spec("fig4_single_vm", horizon=3)
        system, result = _run_with_obs(spec, metrics=True)
        summary = system.telemetry.hub.summary()
        assert summary["counters"]["intervals"] == 3
        assert 0.0 <= summary["gauges"]["read_hit_ratio"] <= 1.0
        latency = summary["histograms"]["request_latency_us"]
        assert latency["count"] == result.completed
        assert latency["min"] <= latency["mean"] <= latency["max"]


class TestTraceExport:
    def test_chrome_trace_schema(self):
        spec = _short_spec("fig4_single_vm", horizon=4)
        system, _ = _run_with_obs(spec, metrics=False, trace=True)
        doc = json.loads(system.telemetry.spans.chrome_trace_json())
        events = doc["traceEvents"]
        assert events
        for event in events:
            for field in TRACE_REQUIRED_FIELDS:
                assert field in event, f"missing {field!r} in {event}"
        phases = {e["ph"] for e in events}
        assert phases == {"M", "X"}
        assert doc["otherData"]["dropped_spans"] == 0
        names = {
            e["args"]["name"] for e in events if e["name"] == "process_name"
        }
        assert names == {"requests", "ssd", "hdd"}

    def test_request_spans_carry_attribution(self):
        spec = _short_spec("fig4_single_vm", horizon=4)
        system, result = _run_with_obs(spec, metrics=False, trace=True)
        requests = [
            e
            for e in system.telemetry.spans.events
            if e["pid"] == 1 and e["ph"] == "X"
        ]
        assert len(requests) == result.completed
        for span in requests:
            assert span["dur"] >= 0
            args = span["args"]
            assert {"tenant", "hit", "bypassed", "served_by"} <= set(args)

    def test_span_tracer_capacity_and_drops(self):
        tracer = SpanTracer(capacity=2)
        for i in range(5):
            tracer.emit(f"op{i}", "test", float(i), 1.0, 1, 0)
        assert len(tracer.events) == 2
        assert tracer.dropped == 3
        assert tracer.chrome_trace()["otherData"]["dropped_spans"] == 3

    def test_write_trace_requires_tracing(self, tmp_path):
        spec = _short_spec("fig4_single_vm", horizon=2)
        system, _ = _run_with_obs(spec, metrics=True)
        with pytest.raises(ValueError, match="trace"):
            system.telemetry.write_trace(tmp_path / "trace.json")


class TestHubUnits:
    def test_histogram_buckets_and_stats(self):
        hist = Histogram()
        for value in (0.5, 1.0, 5.0, 100.0):
            hist.observe(value)
        assert hist.count == 4
        assert hist.min == 0.5
        assert hist.max == 100.0
        assert hist.mean == pytest.approx(26.625)
        # values <= 1 share bucket 0; 5 -> ceil(log2 5) = 3; 100 -> 7
        assert hist.as_dict()["buckets"] == {"0": 2, "3": 1, "7": 1}

    def test_hub_instruments(self):
        hub = MetricsHub()
        hub.inc("n")
        hub.inc("n", 2.0)
        hub.set_gauge("g", 0.25)
        hub.observe("h", 3.0)
        summary = hub.summary()
        assert summary["counters"] == {"n": 3.0}
        assert summary["gauges"] == {"g": 0.25}
        assert summary["histograms"]["h"]["count"] == 1

    def test_strip_wall_is_deep_and_non_mutating(self):
        row = {
            "wall": {"s": 1.0},
            "keep": [{"wall": {"s": 2.0}, "x": 1}],
            "nested": {"wall": 3.0, "y": 2},
        }
        stripped = strip_wall(row)
        assert stripped == {"keep": [{"x": 1}], "nested": {"y": 2}}
        assert "wall" in row and "wall" in row["keep"][0]


class TestObsConfig:
    def test_defaults_are_fully_off(self):
        cfg = SystemConfig()
        assert cfg.obs == ObsConfig()
        assert not cfg.obs.enabled
        cfg.validate()

    @pytest.mark.parametrize(
        "kwargs, match",
        [
            ({"trace_capacity": 0}, "trace_capacity"),
            ({"heartbeat_s": -1.0}, "heartbeat_s"),
            ({"enabled": True, "metrics": False, "trace": False}, "records nothing"),
        ],
    )
    def test_validate_rejects(self, kwargs, match):
        with pytest.raises(ValueError, match=match):
            ObsConfig(**kwargs).validate()

    def test_system_config_validates_obs(self):
        cfg = dataclasses.replace(
            SystemConfig(), obs=ObsConfig(trace_capacity=0)
        )
        with pytest.raises(ValueError, match="trace_capacity"):
            cfg.validate()


class TestSpecObsBlock:
    def test_to_dict_omits_empty_obs(self):
        spec = get_scenario("fig4_single_vm")
        assert "obs" not in spec.to_dict()

    def test_round_trip_and_config_mapping(self):
        spec = dataclasses.replace(
            get_scenario("fig4_single_vm"),
            obs={"enabled": True, "trace": True, "trace_capacity": 99},
        )
        rebuilt = ScenarioSpec.from_dict(
            json.loads(json.dumps(spec.to_dict()))
        )
        assert rebuilt.obs == spec.obs
        cfg = rebuilt.to_config()
        assert cfg.obs.enabled and cfg.obs.trace
        assert cfg.obs.trace_capacity == 99

    def test_obs_must_be_a_mapping(self):
        spec = dataclasses.replace(get_scenario("fig4_single_vm"), obs=[1])
        with pytest.raises(ScenarioError, match="obs"):
            spec.validate()

    def test_unknown_obs_key_rejected(self):
        spec = dataclasses.replace(
            get_scenario("fig4_single_vm"), obs={"enabled": True, "nope": 1}
        )
        with pytest.raises(ScenarioError, match="nope"):
            spec.to_config()


class TestArtifactAndPerfCounters:
    def test_artifact_round_trips_telemetry(self):
        spec = dataclasses.replace(
            _short_spec("fig4_single_vm", horizon=3),
            obs={"enabled": True, "metrics": True, "trace": True},
        )
        cfg = spec.to_config()
        system = spec.build(cfg, trace_records=False)
        result = system.run(until_us=spec.horizon_intervals * cfg.interval_us)
        assert set(result.telemetry) == {"wall", "metrics", "trace"}
        artifact = RunArtifact.from_result(spec, result, config=cfg)
        rebuilt = RunArtifact.from_dict(
            json.loads(json.dumps(artifact.to_dict()))
        )
        assert rebuilt.telemetry == artifact.telemetry
        assert rebuilt.telemetry["trace"]["events"] > 0

    def test_untelemetered_artifact_has_empty_section(self):
        spec = _short_spec("fig4_single_vm", horizon=2)
        result = spec.run()
        assert result.telemetry == {}
        artifact = RunArtifact.from_result(spec, result)
        assert artifact.telemetry == {}
        assert "telemetry" in artifact.to_dict()

    def test_perf_counters_always_include_trace_totals(self):
        spec = _short_spec("fig4_single_vm", horizon=2)
        result = spec.run()
        assert set(result.perf_counters) == {
            "trace_records", "trace_dropped", "trace_record_events",
        }
        untimed = run_perf_counters(result, None)
        assert untimed == result.perf_counters
        timed = run_perf_counters(result, 0.5)
        assert set(timed) > set(untimed)
        assert timed["trace_dropped"] == result.perf_counters["trace_dropped"]
        assert timed["events_processed"] == result.events_processed


class TestObsCli:
    def test_record_writes_metrics_and_trace(self, tmp_path, capsys):
        out = tmp_path / "obs_out"
        rc = obs_main(
            [
                "record", "fig4_single_vm", "--quick", "--horizon", "4",
                "--trace", "--out", str(out),
            ]
        )
        assert rc == 0
        rows = [
            json.loads(line)
            for line in (out / "metrics.jsonl").read_text().splitlines()
        ]
        assert len(rows) == 4
        doc = json.loads((out / "trace.json").read_text())
        assert all(
            all(field in event for field in TRACE_REQUIRED_FIELDS)
            for event in doc["traceEvents"]
        )
        assert "[obs] fig4_single_vm" in capsys.readouterr().out

    def test_summary_of_metrics_jsonl(self, tmp_path, capsys):
        out = tmp_path / "obs_out"
        assert obs_main(
            ["record", "fig4_single_vm", "--quick", "--horizon", "3",
             "--out", str(out)]
        ) == 0
        capsys.readouterr()
        assert obs_main(["summary", str(out / "metrics.jsonl")]) == 0
        text = capsys.readouterr().out
        assert "intervals: 3" in text
        assert "final read hit ratio" in text

    def test_summary_without_telemetry_fails(self, tmp_path, capsys):
        path = tmp_path / "artifact.json"
        path.write_text(json.dumps({"fingerprint": {}}))
        assert obs_main(["summary", str(path)]) == 1
        assert "no 'telemetry' section" in capsys.readouterr().err

    def test_export_trace(self, tmp_path):
        out = tmp_path / "trace.json"
        rc = obs_main(
            ["export-trace", "fig4_single_vm", "--quick", "--horizon", "3",
             "--out", str(out)]
        )
        assert rc == 0
        doc = json.loads(out.read_text())
        assert any(e["ph"] == "X" for e in doc["traceEvents"])

    def test_unknown_scenario_exits_2(self, capsys):
        assert obs_main(["record", "no_such_scenario"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_record_heartbeat_prints_progress(self, tmp_path, capsys):
        rc = obs_main(
            [
                "record", "fig4_single_vm", "--quick", "--horizon", "3",
                "--heartbeat", "0.0000001", "--out", str(tmp_path / "o"),
            ]
        )
        assert rc == 0
        err = capsys.readouterr().err
        assert "[obs] sim" in err and "ev/s" in err


class TestCampaignHeartbeatAndStatus:
    def _tiny_campaign(self) -> CampaignSpec:
        return CampaignSpec(
            name="tiny-obs",
            scenarios=[
                {
                    "name": "obs_web",
                    "workload": "web",
                    "base": "quick",
                    "horizon_intervals": 2,
                }
            ],
        )

    def test_status_reports_wall_time_and_throughput(self, tmp_path):
        store = RunStore(tmp_path / "store")
        campaign = self._tiny_campaign()
        run_campaign(campaign, store, verbose=False, heartbeat_s=0.001)
        statuses = campaign_status(campaign, store)
        assert [s.state for s in statuses] == ["stored"]
        assert statuses[0].wall_s is not None and statuses[0].wall_s >= 0
        assert statuses[0].events_per_sec is not None
        table = status_table(statuses)
        assert "wall s" in table and "events/s" in table

    def test_status_table_dashes_for_missing_perf(self):
        table = status_table(
            [
                ScenarioStatus(
                    name="x", workload="web", scheme="wb",
                    digest="d" * 12, state="missing",
                )
            ]
        )
        row = table.splitlines()[-1]
        assert row.count("-") >= 2

    def test_cli_rejects_negative_heartbeat(self, tmp_path, capsys):
        path = tmp_path / "campaign.json"
        path.write_text(json.dumps(self._tiny_campaign().to_dict()))
        rc = campaign_main(
            [
                "run", str(path),
                "--store", str(tmp_path / "store"),
                "--heartbeat", "-1",
            ]
        )
        assert rc == 2
        assert "heartbeat" in capsys.readouterr().err
