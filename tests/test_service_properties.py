"""Property-based tests for the tenant-churn service layer.

The acceptance-critical invariants: under *arbitrary* interleavings of
tenant arrivals, departures, inserts, and evictions, the
:class:`QuotaAllocator` accounting never goes negative, quotas never sum
past the cache capacity, and a departed tenant's blocks are fully
reclaimed (accounting and store both).  The churn manager itself is
exercised against a real controller with a duck-typed workload.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.controller import CacheController
from repro.cache.store import CacheStore
from repro.devices.base import StorageDevice
from repro.devices.hdd import HddConfig, HddModel
from repro.devices.ssd import SsdConfig, SsdModel
from repro.schemes.allocation import CapacityScheme, QuotaAllocator, fair_shares
from repro.service import (
    ChurnManager,
    ServiceError,
    SloMonitor,
    SloTarget,
    TenantLifecycle,
    generate_lifecycles,
)
from repro.sim.engine import Simulator

# ---------------------------------------------------------------------------
# Declarations: SLO targets, lifecycles, the churn process
# ---------------------------------------------------------------------------


class TestSloTarget:
    def test_requires_at_least_one_objective(self):
        with pytest.raises(ServiceError):
            SloTarget().validate()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"p99_latency_us": 0.0},
            {"p99_latency_us": -5.0},
            {"min_hit_ratio": -0.1},
            {"min_hit_ratio": 1.5},
        ],
    )
    def test_rejects_out_of_range(self, kwargs):
        with pytest.raises(ServiceError):
            SloTarget(**kwargs).validate()

    def test_from_spec_strict_keys(self):
        with pytest.raises(ServiceError, match="unknown slo keys"):
            SloTarget.from_spec({"p99_latency_us": 1.0, "p99": 1.0}, "t")

    def test_from_spec_round_trip(self):
        target = SloTarget.from_spec(
            {"p99_latency_us": 100, "min_hit_ratio": 0.5}, "t"
        )
        assert target.as_dict() == {
            "p99_latency_us": 100.0,
            "min_hit_ratio": 0.5,
        }


class TestTenantLifecycle:
    def test_static_default_has_no_churn(self):
        lifecycle = TenantLifecycle()
        lifecycle.validate()
        assert not lifecycle.has_churn

    def test_slo_only_lifecycle_is_not_churn(self):
        lifecycle = TenantLifecycle(slo=SloTarget(p99_latency_us=100.0))
        lifecycle.validate()
        assert not lifecycle.has_churn

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"arrive_at_us": -1.0},
            {"arrive_at_us": 50.0, "depart_at_us": 50.0},
            {"depart_at_us": 0.0},
            {"migrate_at_us": (10.0, 10.0)},
            {"arrive_at_us": 20.0, "migrate_at_us": (10.0,)},
            {"migrate_at_us": (90.0,), "depart_at_us": 80.0},
            {"slo": SloTarget()},
        ],
    )
    def test_rejects_inconsistent(self, kwargs):
        with pytest.raises(ServiceError):
            TenantLifecycle(**kwargs).validate()


class TestChurnProcess:
    def test_deterministic_for_seed(self):
        a = generate_lifecycles(6, 1000.0, seed=42)
        b = generate_lifecycles(6, 1000.0, seed=42)
        assert a == b
        assert a != generate_lifecycles(6, 1000.0, seed=43)

    def test_keep_first_pins_tenant_zero(self):
        lifecycles = generate_lifecycles(4, 1000.0, seed=1, keep_first=True)
        assert lifecycles[0] == TenantLifecycle()
        assert all(lc.has_churn for lc in lifecycles[1:])

    def test_appending_tenant_preserves_existing_draws(self):
        short = generate_lifecycles(3, 1000.0, seed=5)
        long = generate_lifecycles(5, 1000.0, seed=5)
        assert long[:3] == short

    def test_generated_lifecycles_validate(self):
        for lc in generate_lifecycles(8, 500.0, seed=9, keep_first=False):
            lc.validate()
            if lc.arrive_at_us is not None:
                assert lc.depart_at_us > lc.arrive_at_us

    def test_rejects_bad_parameters(self):
        with pytest.raises(ServiceError):
            generate_lifecycles(0, 1000.0, seed=1)
        with pytest.raises(ServiceError):
            generate_lifecycles(2, 0.0, seed=1)
        with pytest.raises(ServiceError):
            generate_lifecycles(2, 1000.0, seed=1, mean_lifetime_intervals=0.0)


# ---------------------------------------------------------------------------
# Property: allocator accounting under arbitrary churn interleavings
# ---------------------------------------------------------------------------

_N_TENANTS = 4
_CAPACITY = 64
_REGION = 1000  # LBA stride: tenant t owns [t*_REGION, (t+1)*_REGION)


class _FairScheme(CapacityScheme):
    """Minimal capacity scheme: fair shares, departure redistribution."""

    name = "test_fair"

    def start(self) -> None:  # pragma: no cover - never ticked here
        pass


churn_ops = st.lists(
    st.tuples(
        st.sampled_from(["insert", "insert_dirty", "evict", "depart", "preload"]),
        st.integers(min_value=0, max_value=_N_TENANTS - 1),
        st.integers(min_value=0, max_value=31),
    ),
    max_size=150,
)


def _check_accounting(store: CacheStore, alloc: QuotaAllocator) -> None:
    """Accounting exactness: counts == ownership == resident blocks."""
    occupancy = alloc.occupancy()
    assert all(count >= 0 for count in occupancy.values())
    # counts agree with the owner map, owned blocks are really resident
    by_owner: dict[int, int] = {}
    for lba, tid in alloc._owner.items():
        by_owner[tid] = by_owner.get(tid, 0) + 1
        assert store.peek(lba) is not None, f"owned lba {lba} not resident"
        assert _REGION * tid <= lba < _REGION * (tid + 1)
    assert {t: c for t, c in occupancy.items() if c} == by_owner
    # accounted blocks never exceed what is physically resident
    assert sum(occupancy.values()) <= store.occupied


@given(ops=churn_ops)
@settings(max_examples=60, deadline=None)
def test_allocator_invariants_under_arbitrary_churn(ops):
    store = CacheStore(_CAPACITY, associativity=4, replacement="lru")
    alloc = QuotaAllocator(store, default_quota_blocks=_CAPACITY // _N_TENANTS)
    scheme = _FairScheme()
    scheme.allocator = alloc
    scheme.shares = fair_shares(_CAPACITY, _N_TENANTS, min_share_blocks=4)
    alloc.set_quotas(scheme.shares)
    total_share = sum(scheme.shares.values())

    active = set(range(_N_TENANTS))
    now = 0.0
    for action, tid, offset in ops:
        now += 1.0
        lba = tid * _REGION + offset
        if action in ("insert", "insert_dirty") and tid in active:
            # the controller's insert protocol: admit, insert, report
            if alloc.admit(tid, lba):
                _, eviction = store.insert(
                    lba, now, dirty=(action == "insert_dirty")
                )
                alloc.note_insert(tid, lba)
                if eviction is not None:
                    alloc.note_remove(eviction.lba)
        elif action == "evict":
            if store.invalidate(lba):
                alloc.note_remove(lba)
        elif action == "preload":
            # warm-up style ownerless insert: no allocator accounting
            _, eviction = store.insert(lba, now)
            if eviction is not None:
                alloc.note_remove(eviction.lba)
        elif action == "depart" and tid in active:
            active.discard(tid)
            scheme.on_tenant_departed(tid)
            # the churn manager's reclaim: invalidate the whole region
            for block_lba in [
                b.lba
                for b in store
                if tid * _REGION <= b.lba < (tid + 1) * _REGION
            ]:
                store.invalidate(block_lba)
                alloc.note_remove(block_lba)
            # fully reclaimed: no accounting, no resident blocks
            assert alloc.occupancy().get(tid, 0) == 0
            assert tid not in alloc.quotas
            assert not any(
                tid * _REGION <= b.lba < (tid + 1) * _REGION for b in store
            )
        _check_accounting(store, alloc)
        # shares were redistributed, never created or destroyed
        assert sum(scheme.shares.values()) == (
            total_share if active else 0
        ) or not active
        assert sum(scheme.shares.values()) <= total_share
        assert set(scheme.shares) == active

    # final recount from scratch
    _check_accounting(store, alloc)


@given(
    departures=st.lists(
        st.integers(min_value=0, max_value=_N_TENANTS - 1),
        max_size=8,
    )
)
@settings(max_examples=50, deadline=None)
def test_share_redistribution_conserves_capacity(departures):
    store = CacheStore(_CAPACITY, associativity=4)
    scheme = _FairScheme()
    scheme.allocator = QuotaAllocator(store, default_quota_blocks=16)
    scheme.shares = fair_shares(_CAPACITY, _N_TENANTS, min_share_blocks=4)
    scheme.allocator.set_quotas(scheme.shares)
    total = sum(scheme.shares.values())
    departed: set[int] = set()
    for tid in departures:
        if tid in departed:
            continue
        scheme.on_tenant_departed(tid)
        departed.add(tid)
        if scheme.shares:
            assert sum(scheme.shares.values()) == total
        assert scheme.allocator.quotas == scheme.shares


# ---------------------------------------------------------------------------
# The churn manager against a real controller
# ---------------------------------------------------------------------------


class _FakeWorkload:
    """Duck-typed ServiceWorkload over fixed regions and warm sets."""

    def __init__(self, lifecycles):
        self.lifecycles = list(lifecycles)
        self.stopped: list[int] = []

    @property
    def tenant_count(self) -> int:
        return len(self.lifecycles)

    def stop_tenant(self, tenant_id: int) -> None:
        self.stopped.append(tenant_id)

    def tenant_region(self, tenant_id: int) -> tuple[int, int]:
        return (tenant_id * _REGION, (tenant_id + 1) * _REGION)

    def tenant_warm_blocks(self, tenant_id: int):
        base = tenant_id * _REGION
        return ([base + i for i in range(6)], [base + 50, base + 51])


def _mini_system():
    sim = Simulator()
    ssd = StorageDevice(sim, "ssd", SsdModel(SsdConfig(jitter_sigma=0.0)))
    hdd = StorageDevice(sim, "hdd", HddModel(HddConfig(jitter_sigma=0.0)))
    store = CacheStore(64, associativity=8)
    controller = CacheController(sim, ssd, hdd, store)
    return sim, store, controller


class TestChurnManager:
    def test_arrival_rewarms_and_departure_reclaims(self):
        sim, store, controller = _mini_system()
        workload = _FakeWorkload(
            [
                None,
                TenantLifecycle(arrive_at_us=100.0, depart_at_us=200.0),
            ]
        )
        manager = ChurnManager(sim, controller, workload)
        assert manager.is_active(0) and not manager.is_active(1)

        manager.start()
        manager.start()  # idempotent: events scheduled once
        assert len(manager.events) == 2

        sim.run(until=150.0)
        assert manager.is_active(1)
        assert manager.blocks_rewarmed == 8  # 6 clean + 2 dirty
        region = [b.lba for b in store if b.lba >= _REGION]
        assert sorted(region) == [_REGION + i for i in range(6)] + [
            _REGION + 50,
            _REGION + 51,
        ]
        assert store.dirty_count == 2

        sim.run()
        assert not manager.is_active(1)
        assert workload.stopped == [1]
        assert manager.blocks_reclaimed == 8
        assert manager.dirty_flushed == 2
        assert not any(b.lba >= _REGION for b in store)
        summary = manager.summary()
        assert summary["arrivals"] == 1 and summary["departures"] == 1
        assert summary["departed"] == [1]

    def test_departure_releases_allocator_share(self):
        sim, store, controller = _mini_system()
        workload = _FakeWorkload([None, TenantLifecycle(depart_at_us=50.0)])
        scheme = _FairScheme()
        scheme.allocator = QuotaAllocator(store, default_quota_blocks=32)
        scheme.shares = {0: 32, 1: 32}
        scheme.allocator.set_quotas(scheme.shares)
        controller.allocator = scheme.allocator
        for i in range(4):
            lba = _REGION + i
            assert controller.rewarm_block(lba, 1, dirty=(i == 0))
        assert scheme.allocator.occupancy() == {1: 4}

        manager = ChurnManager(sim, controller, workload, balancer=scheme)
        manager.start()
        sim.run()
        assert manager.blocks_reclaimed == 4 and manager.dirty_flushed == 1
        assert scheme.allocator.occupancy().get(1, 0) == 0
        assert scheme.shares == {0: 64}  # the freed share moved to vm0
        assert scheme.allocator.quotas == {0: 64}

    def test_migration_reclaims_then_rewarms_clean(self):
        sim, store, controller = _mini_system()
        workload = _FakeWorkload([TenantLifecycle(migrate_at_us=(100.0,))])
        manager = ChurnManager(sim, controller, workload)
        for i in range(6):
            controller.rewarm_block(i, 0)
        controller.rewarm_block(50, 0, dirty=True)
        controller.rewarm_block(51, 0, dirty=True)
        assert store.dirty_count == 2

        manager.start()
        sim.run()
        assert manager.migrations == 1
        assert manager.blocks_reclaimed == 8 and manager.dirty_flushed == 2
        # the new host holds clean copies only — dirty data was flushed
        assert manager.blocks_rewarmed == 8
        assert store.dirty_count == 0
        assert sorted(b.lba for b in store) == list(range(6)) + [50, 51]

    def test_rewarm_respects_allocator_denial(self):
        sim, store, controller = _mini_system()
        alloc = QuotaAllocator(store, default_quota_blocks=0)
        controller.allocator = alloc
        assert not controller.rewarm_block(5, 0)
        assert store.peek(5) is None
        controller.allocator = None
        assert controller.rewarm_block(5, 0)
        assert not controller.rewarm_block(5, 0)  # already resident


class TestSloMonitorUnit:
    def test_requires_targets_and_positive_interval(self):
        sim, _, controller = _mini_system()
        with pytest.raises(ServiceError):
            SloMonitor(sim, controller, {}, interval_us=100.0)
        with pytest.raises(ServiceError):
            SloMonitor(
                sim,
                controller,
                {0: SloTarget(p99_latency_us=1.0)},
                interval_us=0.0,
            )

    def test_empty_window_is_vacuously_compliant(self):
        sim, _, controller = _mini_system()
        monitor = SloMonitor(
            sim,
            controller,
            {0: SloTarget(p99_latency_us=1.0, min_hit_ratio=0.99)},
            interval_us=100.0,
        )
        monitor.start()
        sim.run(until=350.0)
        assert len(monitor.samples) == 3
        for sample in monitor.samples:
            assert sample.compliant
            assert sample.p99_latency_us == 0.0  # never nan
        assert monitor.summary()["total_violations"] == 0

    def test_inactive_tenants_skipped_by_probe(self):
        sim, _, controller = _mini_system()
        monitor = SloMonitor(
            sim,
            controller,
            {0: SloTarget(min_hit_ratio=0.5), 1: SloTarget(min_hit_ratio=0.5)},
            interval_us=100.0,
            activity_probe=lambda tid: tid == 0,
        )
        monitor.start()
        sim.run(until=250.0)
        assert {s.tenant_id for s in monitor.samples} == {0}
        assert monitor.intervals[1] == 0
