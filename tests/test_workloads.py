"""Unit tests for address patterns and the workload engine."""

import numpy as np
import pytest

from repro.io.request import Request
from repro.sim.engine import Simulator
from repro.workloads.access_patterns import (
    HotColdPattern,
    MixPattern,
    SequentialPattern,
    UniformPattern,
    ZipfPattern,
)
from repro.workloads.base import PhaseSpec, Workload
from repro.workloads.mail import MAIL_TOTAL_INTERVALS, mail_server_workload
from repro.workloads.synthetic import (
    random_read_workload,
    sequential_read_workload,
)
from repro.workloads.tpcc import TPCC_TOTAL_INTERVALS, tpcc_workload
from repro.workloads.web import WEB_TOTAL_INTERVALS, web_server_workload


@pytest.fixture
def rng():
    return np.random.default_rng(123)


class TestPatterns:
    def test_uniform_in_range(self, rng):
        pat = UniformPattern(100, 50)
        samples = [pat.sample(rng) for _ in range(500)]
        assert all(100 <= s < 150 for s in samples)
        assert pat.footprint == 50

    def test_uniform_invalid_span(self):
        with pytest.raises(ValueError):
            UniformPattern(0, 0)

    def test_zipf_skews_toward_few_blocks(self, rng):
        pat = ZipfPattern(0, 1000, s=1.2)
        samples = [pat.sample(rng) for _ in range(5000)]
        assert all(0 <= s < 1000 for s in samples)
        top = max(set(samples), key=samples.count)
        assert samples.count(top) > 5000 / 1000 * 10  # far above uniform share

    def test_zipf_deterministic_permutation(self, rng):
        a = ZipfPattern(0, 100, s=1.1, perm_seed=5)
        b = ZipfPattern(0, 100, s=1.1, perm_seed=5)
        r1 = np.random.default_rng(1)
        r2 = np.random.default_rng(1)
        assert [a.sample(r1) for _ in range(50)] == [b.sample(r2) for _ in range(50)]

    def test_zipf_invalid_params(self):
        with pytest.raises(ValueError):
            ZipfPattern(0, 0)
        with pytest.raises(ValueError):
            ZipfPattern(0, 10, s=0)

    def test_hotcold_ratio(self, rng):
        pat = HotColdPattern(0, 10, 1000, 1000, hot_prob=0.9)
        samples = [pat.sample(rng) for _ in range(5000)]
        hot = sum(1 for s in samples if s < 10)
        assert 0.85 < hot / len(samples) < 0.95

    def test_hotcold_invalid_prob(self):
        with pytest.raises(ValueError):
            HotColdPattern(0, 10, 100, 10, hot_prob=1.5)

    def test_sequential_advances_and_wraps(self, rng):
        pat = SequentialPattern(100, 10, stride=4)
        lbas = [pat.sample(rng) for _ in range(5)]
        assert lbas == [100, 104, 108, 102, 106]
        pat.reset()
        assert pat.sample(rng) == 100

    def test_mix_pattern_weights(self, rng):
        pat = MixPattern([(0.9, UniformPattern(0, 10)), (0.1, UniformPattern(1000, 10))])
        samples = [pat.sample(rng) for _ in range(2000)]
        low = sum(1 for s in samples if s < 10)
        assert 0.8 < low / len(samples) < 0.97

    def test_mix_pattern_invalid(self):
        with pytest.raises(ValueError):
            MixPattern([])


class TestPhaseSpec:
    def _phase(self, **kw):
        base = dict(
            label="p",
            n_intervals=5,
            rate_iops=100.0,
            write_frac=0.5,
            pattern_read=UniformPattern(0, 100),
        )
        base.update(kw)
        return PhaseSpec(**base)

    def test_defaults_valid(self):
        self._phase().validate()

    def test_invalid_rejected(self):
        with pytest.raises(ValueError):
            self._phase(n_intervals=0).validate()
        with pytest.raises(ValueError):
            self._phase(rate_iops=0).validate()
        with pytest.raises(ValueError):
            self._phase(write_frac=1.5).validate()

    def test_write_pattern_defaults_to_read(self):
        p = self._phase()
        assert p.write_pattern is p.pattern_read


class TestWorkloadEngine:
    def _one_phase(self, rate=1000.0, n_intervals=4, write_frac=0.5):
        return Workload(
            "t",
            [
                PhaseSpec(
                    label="only",
                    n_intervals=n_intervals,
                    rate_iops=rate,
                    write_frac=write_frac,
                    pattern_read=UniformPattern(0, 1000),
                )
            ],
            interval_us=10_000.0,
        )

    def test_duration_and_intervals(self):
        wl = self._one_phase(n_intervals=4)
        assert wl.total_intervals == 4
        assert wl.duration_us == 40_000.0

    def test_generates_poisson_arrivals(self, rng):
        sim = Simulator()
        wl = self._one_phase(rate=1000.0, n_intervals=10)
        got: list[Request] = []

        def submit(req):
            got.append(req)
            req.add_wait()
            sim.schedule(10.0, req.op_done, sim.now + 10.0)
            sim.schedule(10.0, wl.on_request_complete, req)

        wl.bind(sim, submit, rng)
        sim.run(until=wl.duration_us)
        # 1000 IOPS over 0.1 s → ~100 arrivals
        assert 60 <= len(got) <= 140
        assert wl.stats.generated == len(got)

    def test_read_write_split(self, rng):
        sim = Simulator()
        wl = self._one_phase(rate=5000.0, n_intervals=10, write_frac=0.8)
        got = []

        def submit(req):
            got.append(req)
            wl.on_request_complete(req)

        wl.bind(sim, submit, rng)
        sim.run(until=wl.duration_us)
        frac = sum(1 for r in got if r.is_write) / len(got)
        assert 0.7 < frac < 0.9

    def test_backpressure_throttles(self, rng):
        sim = Simulator()
        wl = Workload(
            "t",
            [
                PhaseSpec(
                    label="burst",
                    n_intervals=2,
                    rate_iops=100_000.0,
                    write_frac=0.0,
                    pattern_read=UniformPattern(0, 100),
                )
            ],
            interval_us=10_000.0,
            max_outstanding=16,
        )
        outstanding = []

        def submit(req):
            outstanding.append(req)  # never completed

        wl.bind(sim, submit, rng)
        sim.run(until=wl.duration_us)
        assert len(outstanding) == 16
        assert wl.stats.throttled >= 1

    def test_completion_resumes_after_throttle(self, rng):
        sim = Simulator()
        wl = self._one_phase(rate=50_000.0, n_intervals=4)
        wl.max_outstanding = 8
        done = []

        def submit(req):
            done.append(req)
            # complete instantly → backpressure opens again
            sim.schedule(1.0, wl.on_request_complete, req)

        wl.bind(sim, submit, rng)
        sim.run(until=wl.duration_us)
        assert len(done) > 8

    def test_phase_boundaries_respected(self, rng):
        sim = Simulator()
        slow = PhaseSpec("slow", 2, 100.0, 0.0, UniformPattern(0, 10))
        fast = PhaseSpec("fast", 2, 10_000.0, 0.0, UniformPattern(0, 10))
        wl = Workload("t", [slow, fast], interval_us=10_000.0)
        times = []

        def submit(req):
            times.append(req.arrival)
            wl.on_request_complete(req)

        wl.bind(sim, submit, rng)
        sim.run(until=wl.duration_us)
        early = sum(1 for t in times if t < 20_000.0)
        late = sum(1 for t in times if t >= 20_000.0)
        assert late > early * 5

    def test_burst_intervals_annotation(self):
        p1 = PhaseSpec("a", 3, 100.0, 0.0, UniformPattern(0, 10))
        p2 = PhaseSpec("b", 2, 100.0, 0.0, UniformPattern(0, 10), burst=True)
        wl = Workload("t", [p1, p2], interval_us=1000.0)
        assert wl.burst_intervals() == [3, 4]

    def test_empty_phases_rejected(self):
        with pytest.raises(ValueError):
            Workload("t", [], interval_us=1000.0)


class TestPaperWorkloads:
    def test_interval_counts_match_paper_axes(self):
        assert tpcc_workload(1000.0).total_intervals == TPCC_TOTAL_INTERVALS == 200
        assert mail_server_workload(1000.0).total_intervals == MAIL_TOTAL_INTERVALS == 200
        assert web_server_workload(1000.0).total_intervals == WEB_TOTAL_INTERVALS == 175

    def test_tpcc_is_read_dominated(self):
        wl = tpcc_workload(1000.0)
        assert all(p.write_frac < 0.05 for p in wl.phases)

    def test_mail_phases_follow_paper_timeline(self):
        wl = mail_server_workload(1000.0)
        labels = [p.label for p in wl.phases]
        assert labels.index("mixed-rw-burst") == 1
        starts = []
        acc = 0
        for p in wl.phases:
            starts.append(acc)
            acc += p.n_intervals
        assert starts[1] == 23  # paper's RO burst
        assert starts[2] == 128  # paper's WO burst
        assert starts[3] == 134  # paper's WB burst

    def test_web_burst_at_first_interval(self):
        wl = web_server_workload(1000.0)
        assert wl.phases[0].n_intervals == 1
        assert wl.phases[1].burst

    def test_warm_sets_fit_cache(self):
        for factory in (tpcc_workload, mail_server_workload, web_server_workload):
            wl = factory(1000.0, cache_blocks=4096)
            warm = len(wl.warm_blocks) + len(wl.warm_dirty_blocks)
            assert warm <= 4096

    def test_rate_scale_scales_rates(self):
        a = tpcc_workload(1000.0, rate_scale=1.0)
        b = tpcc_workload(1000.0, rate_scale=0.5)
        assert b.phases[0].rate_iops == pytest.approx(a.phases[0].rate_iops * 0.5)

    def test_synthetic_factories_build(self):
        assert random_read_workload(1000.0).total_intervals == 20
        assert sequential_read_workload(1000.0).phases[0].size_blocks == 8
