"""Unit tests for the raw-word draw replication (repro.sim.fastdraw).

Two layers: draw-for-draw checks of :class:`RawDraws` against a live
``numpy.random.Generator``, and end-to-end equivalence of the chunked
arrival pre-generator against the scalar path it replaces (same
scenario, ``pregen_enabled`` flipped, identical stats fingerprints).
"""

import numpy as np
import pytest

from repro.config import quick_config
from repro.scenario import get_scenario
from repro.scenario.fingerprint import stats_fingerprint
from repro.sim.engine import Simulator
from repro.sim.fastdraw import RawDraws, replication_verified
from repro.workloads.access_patterns import UniformPattern
from repro.workloads.base import PhaseSpec, Workload


def _pair(seed: int, block: int = 64):
    """A reference Generator and a RawDraws over the same seed."""
    ref = np.random.Generator(np.random.PCG64(seed))
    bg = np.random.PCG64(seed)
    return ref, bg, RawDraws(bg, block=block)


class TestRawDraws:
    def test_random_matches_generator(self):
        ref, _bg, raw = _pair(1234)
        assert [raw.random() for _ in range(500)] == [
            ref.random() for _ in range(500)
        ]

    def test_integers_matches_generator_across_spans(self):
        # Small spans share 32-bit half-words; spans past 2**32 consume
        # whole words; span 1 consumes no entropy at all.
        ref, _bg, raw = _pair(99)
        for span in (1, 2, 3, 10, 255, 4096, 1 << 20, 1 << 32, (1 << 40) + 13):
            for _ in range(50):
                assert raw.integers(7, 7 + span) == int(ref.integers(7, 7 + span))

    def test_exponential_matches_generator(self):
        ref, _bg, raw = _pair(7)
        # Enough draws to hit the ziggurat's wedge/tail branches (~1%).
        for _ in range(5_000):
            assert raw.standard_exponential() == float(ref.standard_exponential())
        for _ in range(100):
            assert raw.exponential(17.5) == float(ref.exponential(17.5))

    def test_interleaved_mix_matches_generator(self):
        # The arrival loop's shape: a data-dependent interleave where one
        # draw decides which distribution samples next.
        ref, _bg, raw = _pair(20190325)
        for _ in range(2_000):
            u = raw.random()
            assert u == ref.random()
            if u < 0.5:
                assert raw.integers(0, 997) == int(ref.integers(0, 997))
            else:
                assert raw.exponential(3.0) == float(ref.exponential(3.0))

    def test_park_roundtrip_continues_scalar_stream(self):
        ref, bg, raw = _pair(42)
        base = bg.state
        for _ in range(333):
            assert raw.random() == ref.random()
        RawDraws.park(bg, base, raw.position())
        cont = np.random.Generator(bg)
        assert [float(cont.random()) for _ in range(100)] == [
            float(ref.random()) for _ in range(100)
        ]

    def test_park_restores_halfword_carry(self):
        # An odd number of 32-bit bounded draws leaves half a word
        # buffered; the park must hand that carry back to numpy.
        ref, bg, raw = _pair(5150)
        base = bg.state
        for _ in range(7):
            assert raw.integers(0, 1000) == int(ref.integers(0, 1000))
        assert raw.has32  # precondition: a carry is actually pending
        RawDraws.park(bg, base, raw.position())
        cont = np.random.Generator(bg)
        for _ in range(20):
            assert int(cont.integers(0, 1000)) == int(ref.integers(0, 1000))

    def test_inherits_existing_halfword_carry(self):
        # A generator mid-stream (odd bounded draw already made) must be
        # picked up carry and all.
        ref = np.random.Generator(np.random.PCG64(8080))
        bg = np.random.PCG64(8080)
        pre = np.random.Generator(bg)
        assert int(pre.integers(0, 100)) == int(ref.integers(0, 100))
        raw = RawDraws(bg, block=16)
        for _ in range(10):
            assert raw.integers(0, 100) == int(ref.integers(0, 100))

    def test_non_pcg64_rejected(self):
        with pytest.raises(ValueError):
            RawDraws(np.random.MT19937(3))

    def test_replication_verified_on_this_numpy(self):
        # The installed numpy must pass the cross-check — otherwise the
        # simulator silently runs the slow path and the equivalence
        # tests below are vacuous.
        assert replication_verified()


class TestPregenEquivalence:
    """Chunked pre-generation must be invisible in every statistic."""

    def _fingerprint(self, scenario: str) -> dict:
        result = get_scenario(scenario).run(config=quick_config(7))
        return stats_fingerprint(result)

    @pytest.mark.parametrize(
        "scenario",
        [
            # Single VM: the plain open-loop fast path.
            "fig4_single_vm",
            # Multi-tenant with arrivals/departures mid-run: chunk
            # rollback on tenant departure plus closed-loop phases.
            "churn_consolidated",
        ],
    )
    def test_chunked_matches_scalar_path(self, scenario, monkeypatch):
        chunked = self._fingerprint(scenario)
        monkeypatch.setattr(Workload, "pregen_enabled", False)
        scalar = self._fingerprint(scenario)
        assert chunked == scalar

    def _saturated_run(self, wl):
        """Drive ``wl`` closed-loop at saturation; returns arrival times.

        Completions lag arrivals badly (100 µs service vs ~10 µs gaps),
        so the concurrency bound is pinned and every resume delivers
        only a couple of arrivals before throttling again.
        """
        sim = Simulator()
        times = []

        def submit(req):
            times.append(req.arrival)
            sim.schedule_call(100.0, wl.on_request_complete, req)

        wl.bind(sim, submit, np.random.default_rng(2019))
        sim.run(until=wl.duration_us)
        return times

    def _closed_loop_workload(self):
        return Workload(
            "t",
            [
                PhaseSpec(
                    label="sat",
                    n_intervals=4,
                    rate_iops=100_000.0,
                    write_frac=0.5,
                    pattern_read=UniformPattern(0, 1000),
                )
            ],
            interval_us=10_000.0,
            max_outstanding=4,
        )

    def test_saturated_closed_loop_abandons_pregen(self, monkeypatch):
        # Each throttle-abort discards a mostly-unconsumed chunk; after
        # pregen_max_strikes in a row the instance must go scalar so a
        # backpressured workload never refills chunks per completion.
        fills = []
        orig_fill = Workload._fill_chunk
        monkeypatch.setattr(
            Workload,
            "_fill_chunk",
            lambda self, t0, f0: fills.append(t0) or orig_fill(self, t0, f0),
        )
        wl = self._closed_loop_workload()
        times = self._saturated_run(wl)
        assert wl.stats.throttled > Workload.pregen_max_strikes
        assert not wl._pregen  # opted out
        assert len(fills) <= Workload.pregen_max_strikes
        assert len(times) > 100  # the run itself kept going, scalar

    def test_fallback_stream_matches_scalar_path(self, monkeypatch):
        chunked = self._saturated_run(self._closed_loop_workload())
        monkeypatch.setattr(Workload, "pregen_enabled", False)
        scalar = self._saturated_run(self._closed_loop_workload())
        assert chunked == scalar

    def test_pregen_gate_respects_class_flag(self, monkeypatch):
        monkeypatch.setattr(Workload, "pregen_enabled", False)
        system = get_scenario("fig4_single_vm").build(quick_config(7))
        workloads = system.workloads if hasattr(system, "workloads") else None
        # Whatever the container shape, every bound workload must have
        # declined pre-generation.
        bound = (
            list(workloads.values())
            if isinstance(workloads, dict)
            else list(workloads or [system.workload])
        )
        assert bound and all(not w._pregen for w in bound)
