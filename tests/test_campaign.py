"""Tests for the campaign layer (repro.campaign).

The acceptance-critical behaviors: a killed/partial campaign resumes
without re-simulating completed scenarios (all prior keys report as
store hits), and ``campaign diff`` detects an injected stat change
between two stored campaigns (and stays clean against the goldens).
"""

from __future__ import annotations

import json
import shutil
from pathlib import Path

import pytest

from repro.campaign import (
    CampaignError,
    CampaignSpec,
    campaign_report,
    campaign_status,
    diff_fingerprints,
    load_campaign,
    load_fingerprints,
    run_campaign,
    status_table,
)
from repro.campaign.cli import main as campaign_main
from repro.store import RunArtifact, RunKey, RunStore

_REPO = Path(__file__).resolve().parent.parent
_GOLDEN_PATH = _REPO / "benchmarks" / "golden" / "suite_quick.json"
_SMOKE_CAMPAIGN = _REPO / "examples" / "campaigns" / "smoke.json"
_CHURN_CAMPAIGN = _REPO / "examples" / "campaigns" / "churn.json"


def tiny_campaign(store: str | None = None) -> CampaignSpec:
    """Three fast scenarios (a scheme sweep at a 2-interval horizon)."""
    return CampaignSpec(
        name="tiny",
        description="scheme sweep for tests",
        store=store,
        scenarios=[
            {
                "name": "web_sweep",
                "workload": "web",
                "base": "quick",
                "horizon_intervals": 2,
                "sweep": {"scheme": ["wb", "sib", "lbica"]},
            }
        ],
    )


class TestCampaignSpec:
    def test_round_trip(self):
        campaign = tiny_campaign(store="some/dir")
        rebuilt = CampaignSpec.from_dict(
            json.loads(json.dumps(campaign.to_dict()))
        )
        assert rebuilt.to_dict() == campaign.to_dict()

    def test_unknown_keys_rejected(self):
        with pytest.raises(CampaignError, match="unknown keys"):
            CampaignSpec.from_dict(
                {"name": "x", "scenarios": ["fig4_single_vm"], "sceanrios": []}
            )

    def test_empty_and_malformed_rejected(self):
        with pytest.raises(CampaignError, match="non-empty"):
            CampaignSpec(name="x", scenarios=[]).validate()
        with pytest.raises(CampaignError, match="jobs"):
            CampaignSpec(
                name="x", scenarios=["fig4_single_vm"], jobs=0
            ).validate()
        with pytest.raises(CampaignError, match="scenarios\\[0\\]"):
            CampaignSpec(name="x", scenarios=["no_such_scenario"]).validate()

    def test_duplicate_expanded_names_rejected(self):
        with pytest.raises(CampaignError, match="duplicate"):
            CampaignSpec(
                name="x", scenarios=["fig4_single_vm", "fig4_single_vm"]
            ).validate()

    def test_expand_mixes_registry_and_inline(self):
        campaign = CampaignSpec(
            name="mix",
            scenarios=[
                "fig4_single_vm",
                {"name": "inline", "workload": "web", "base": "quick"},
            ],
        )
        names = [spec.name for spec in campaign.expand()]
        assert names == ["fig4_single_vm", "inline"]

    def test_load_campaign_reports_path(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{broken")
        with pytest.raises(CampaignError, match="bad.json"):
            load_campaign(bad)

    def test_example_campaign_file_is_valid(self):
        campaign = load_campaign(_SMOKE_CAMPAIGN)
        assert len(campaign.expand()) == 4


class TestRunAndResume:
    def test_first_run_simulates_second_run_all_hits(self, tmp_path):
        store = RunStore(tmp_path / "store")
        campaign = tiny_campaign()
        first = run_campaign(campaign, store, verbose=False)
        assert len(first.simulated) == 3 and first.hits == []
        second = run_campaign(campaign, store, verbose=False)
        assert len(second.hits) == 3 and second.simulated == []
        assert "3 store hits, 0 simulated" in second.summary()
        assert set(second.artifacts) == set(first.artifacts)

    def test_resume_after_kill_skips_completed_shards(self, tmp_path):
        store = RunStore(tmp_path / "store")
        campaign = tiny_campaign()
        run_campaign(campaign, store, verbose=False)
        # emulate a kill that lost the last scenario's artifact: resuming
        # must re-simulate exactly that one and report the rest as hits
        specs = campaign.expand()
        store.path_for(RunKey.for_spec(specs[-1])).unlink()
        resumed = run_campaign(campaign, store, verbose=False)
        assert sorted(resumed.hits) == sorted(s.name for s in specs[:-1])
        assert resumed.simulated == [specs[-1].name]

    def test_corrupt_artifact_heals_on_resume(self, tmp_path):
        store = RunStore(tmp_path / "store")
        campaign = tiny_campaign()
        first = run_campaign(campaign, store, verbose=False)
        spec = campaign.expand()[0]
        store.path_for(RunKey.for_spec(spec)).write_text("{truncated")
        healed = run_campaign(campaign, store, verbose=False)
        assert healed.simulated == [spec.name]
        assert spec.name in healed.healed
        assert (
            healed.artifacts[spec.name].fingerprint
            == first.artifacts[spec.name].fingerprint
        )

    def test_parallel_campaign_matches_serial(self, tmp_path):
        serial = run_campaign(
            tiny_campaign(), RunStore(tmp_path / "a"), jobs=1, verbose=False
        )
        parallel = run_campaign(
            tiny_campaign(), RunStore(tmp_path / "b"), jobs=2, verbose=False
        )
        assert {
            name: art.fingerprint for name, art in serial.artifacts.items()
        } == {name: art.fingerprint for name, art in parallel.artifacts.items()}

    def test_sharding_persists_progressively(self, tmp_path):
        store = RunStore(tmp_path / "store")
        run = run_campaign(
            tiny_campaign(), store, shard_size=1, verbose=False
        )
        assert len(run.simulated) == 3
        assert len(store.digests()) == 3


def churn_campaign(store: str | None = None) -> CampaignSpec:
    """A fast churn campaign: one mid-run arrival + departure, two schemes."""
    workload = {
        "name": "churn_tiny",
        "tenants": [
            {
                "workload": "web",
                "rate_scale": 0.5,
                "slo": {"min_hit_ratio": 0.2},
            },
            {
                "workload": "web",
                "rate_scale": 0.5,
                "arrive_at_us": 30000.0,
                "depart_at_us": 90000.0,
                "slo": {"p99_latency_us": 400000.0},
            },
        ],
    }
    return CampaignSpec(
        name="churn_tiny",
        description="churn scheme sweep for tests",
        store=store,
        scenarios=[
            {
                "name": "churn_sweep",
                "base": "quick",
                "horizon_intervals": 8,
                "workload": workload,
                "sweep": {"scheme": ["wb", "slosteal"]},
            }
        ],
    )


class TestChurnResume:
    """A churn campaign killed mid-sweep must resume from the store to a
    bit-identical artifact — churn counters and SLO series included."""

    def test_killed_churn_campaign_resumes_identically(self, tmp_path):
        store = RunStore(tmp_path / "store")
        campaign = churn_campaign()
        first = run_campaign(campaign, store, verbose=False)
        assert len(first.simulated) == 2 and first.hits == []
        # emulate a kill that lost the last shard's artifact
        specs = campaign.expand()
        store.path_for(RunKey.for_spec(specs[-1])).unlink()
        resumed = run_campaign(campaign, store, verbose=False)
        assert resumed.simulated == [specs[-1].name]
        assert sorted(resumed.hits) == sorted(s.name for s in specs[:-1])
        for name, artifact in first.artifacts.items():
            again = resumed.artifacts[name]
            assert again.fingerprint == artifact.fingerprint
            assert again.service == artifact.service

    def test_churn_artifact_carries_service_section(self, tmp_path):
        store = RunStore(tmp_path / "store")
        campaign = churn_campaign()
        run_campaign(campaign, store, verbose=False)
        for spec in campaign.expand():
            artifact = store.get(RunKey.for_spec(spec))
            churn = artifact.service["churn"]
            assert churn["arrivals"] == 1 and churn["departures"] == 1
            assert churn["departed"] == [1]
            assert artifact.service["slo"]["stats"]["n_samples"] > 0
            assert artifact.fingerprint["service_stats"] == churn
            # strict round-trip, service section included
            again = RunArtifact.from_dict(
                json.loads(json.dumps(artifact.to_dict()))
            )
            assert again.service == artifact.service
            # legacy payloads without the key still rehydrate
            legacy = artifact.to_dict()
            legacy.pop("service")
            assert RunArtifact.from_dict(legacy).service == {}

    def test_parallel_churn_campaign_matches_serial(self, tmp_path):
        serial = run_campaign(
            churn_campaign(), RunStore(tmp_path / "a"), jobs=1, verbose=False
        )
        parallel = run_campaign(
            churn_campaign(), RunStore(tmp_path / "b"), jobs=2, verbose=False
        )
        assert {
            name: art.fingerprint for name, art in serial.artifacts.items()
        } == {name: art.fingerprint for name, art in parallel.artifacts.items()}

    def test_example_churn_campaign_file_is_valid(self):
        campaign = load_campaign(_CHURN_CAMPAIGN)
        assert len(campaign.expand()) == 8


class TestStatusAndReport:
    def test_status_states(self, tmp_path):
        store = RunStore(tmp_path / "store")
        campaign = tiny_campaign()
        assert {s.state for s in campaign_status(campaign, store)} == {"missing"}
        run_campaign(campaign, store, verbose=False)
        statuses = campaign_status(campaign, store)
        assert {s.state for s in statuses} == {"stored"}
        store.path_for(statuses[0].digest).write_text("{bad")
        states = [s.state for s in campaign_status(campaign, store)]
        assert states.count("corrupt") == 1 and states.count("stored") == 2
        table = status_table(campaign_status(campaign, store))
        assert "corrupt" in table and "web_sweep[scheme=wb]" in table

    def test_report_lists_stored_and_pending(self, tmp_path):
        store = RunStore(tmp_path / "store")
        campaign = tiny_campaign()
        text = campaign_report(campaign, store)
        assert "0 stored" in text and "web_sweep[scheme=wb]" in text
        run_campaign(campaign, store, verbose=False)
        text = campaign_report(campaign, store)
        assert "3 stored" in text and "mean µs" in text


class TestDiff:
    def _stored_campaign(self, root) -> RunStore:
        store = RunStore(root)
        run_campaign(tiny_campaign(), store, verbose=False)
        return store

    def test_identical_campaigns_diff_clean(self, tmp_path):
        store = self._stored_campaign(tmp_path / "a")
        diff = diff_fingerprints(
            load_fingerprints(store), load_fingerprints(store)
        )
        assert diff.clean and len(diff.identical) == 3

    def test_injected_stat_change_detected(self, tmp_path):
        store_a = self._stored_campaign(tmp_path / "a")
        shutil.copytree(tmp_path / "a", tmp_path / "b")
        store_b = RunStore(tmp_path / "b")
        victim = store_b.digests()[0]
        artifact = store_b.get(victim)
        artifact.fingerprint["mean_latency"] *= 1.05
        artifact.fingerprint["completed"] += 1
        assert store_b.put(artifact) == victim  # stats are not key inputs
        diff = diff_fingerprints(
            load_fingerprints(store_a), load_fingerprints(store_b)
        )
        assert not diff.clean
        (name,) = diff.deltas
        verdicts = {d.metric: d.verdict for d in diff.deltas[name]}
        assert verdicts["completed"] == "DIVERGES"
        assert verdicts["mean_latency"].startswith("REGRESSED")
        assert diff.regressions
        rendered = diff.render()
        assert "REGRESSED" in rendered and name in rendered

    def test_tolerance_suppresses_small_numeric_drift(self, tmp_path):
        store_a = self._stored_campaign(tmp_path / "a")
        fingerprints = load_fingerprints(store_a)
        drifted = json.loads(json.dumps(fingerprints))
        name = next(iter(drifted))
        drifted[name]["mean_latency"] *= 1.0001
        assert not diff_fingerprints(fingerprints, drifted).clean
        assert diff_fingerprints(fingerprints, drifted, tolerance=0.01).clean

    def test_diff_against_golden_file(self, tmp_path):
        fingerprints = load_fingerprints(_GOLDEN_PATH)
        # grid entries flatten to name/sub
        assert "grid_fanout/tpcc/lbica" in fingerprints
        diff = diff_fingerprints(fingerprints, fingerprints)
        assert diff.clean

    def test_store_with_ambiguous_names_needs_campaign(self, tmp_path):
        store = RunStore(tmp_path / "store")
        campaign = tiny_campaign()
        run_campaign(campaign, store, verbose=False)
        # same scenario names, different config → second set of keys
        seeded = CampaignSpec.from_dict(
            {
                "name": "tiny-seed8",
                "scenarios": [
                    {
                        "name": "web_sweep",
                        "workload": "web",
                        "base": "quick",
                        "horizon_intervals": 2,
                        "system": {"seed": 8},
                        "sweep": {"scheme": ["wb", "sib", "lbica"]},
                    }
                ],
            }
        )
        run_campaign(seeded, store, verbose=False)
        with pytest.raises(ValueError, match="several keys"):
            load_fingerprints(store)
        scoped = load_fingerprints(store, campaign=campaign)
        assert len(scoped) == 3


class TestCli:
    def test_run_status_report_diff_flow(self, tmp_path, capsys):
        campaign_path = tmp_path / "tiny.json"
        campaign_path.write_text(tiny_campaign().to_json())
        store_dir = str(tmp_path / "store")

        assert campaign_main(
            ["run", str(campaign_path), "--store", store_dir, "--quiet"]
        ) == 0
        assert "3 scenarios — 0 store hits, 3 simulated" in capsys.readouterr().out

        assert campaign_main(
            ["run", str(campaign_path), "--store", store_dir, "--quiet"]
        ) == 0
        assert "3 store hits, 0 simulated" in capsys.readouterr().out

        assert campaign_main(
            ["status", str(campaign_path), "--store", store_dir]
        ) == 0
        assert "3/3 stored" in capsys.readouterr().out

        report_path = tmp_path / "report.md"
        assert campaign_main(
            [
                "report",
                str(campaign_path),
                "--store",
                store_dir,
                "--out",
                str(report_path),
            ]
        ) == 0
        capsys.readouterr()
        assert "# Campaign `tiny`" in report_path.read_text()

        assert campaign_main(["diff", store_dir, store_dir]) == 0
        assert "3 identical" in capsys.readouterr().out

    def test_diff_exit_code_on_divergence(self, tmp_path, capsys):
        campaign_path = tmp_path / "tiny.json"
        campaign_path.write_text(tiny_campaign().to_json())
        store_a = str(tmp_path / "a")
        campaign_main(["run", str(campaign_path), "--store", store_a, "--quiet"])
        shutil.copytree(store_a, tmp_path / "b")
        store_b = RunStore(tmp_path / "b")
        artifact = store_b.get(store_b.digests()[0])
        artifact.fingerprint["events_processed"] += 7
        store_b.put(artifact)
        capsys.readouterr()
        assert campaign_main(["diff", store_a, str(tmp_path / "b")]) == 1
        assert "DIVERGES" in capsys.readouterr().out

    def test_missing_store_is_an_error(self, tmp_path, capsys):
        campaign_path = tmp_path / "tiny.json"
        campaign_path.write_text(tiny_campaign().to_json())
        assert campaign_main(["run", str(campaign_path), "--quiet"]) == 2
        assert "names no store" in capsys.readouterr().err

    def test_campaign_store_field_used_as_default(self, tmp_path, capsys):
        campaign_path = tmp_path / "tiny.json"
        campaign_path.write_text(
            tiny_campaign(store=str(tmp_path / "default-store")).to_json()
        )
        assert campaign_main(["run", str(campaign_path), "--quiet"]) == 0
        capsys.readouterr()
        assert (tmp_path / "default-store" / "runs").is_dir()

    def test_experiments_cli_delegates_campaign(self, tmp_path, capsys):
        from repro.experiments.cli import main as experiments_main

        campaign_path = tmp_path / "tiny.json"
        campaign_path.write_text(tiny_campaign().to_json())
        code = experiments_main(
            ["campaign", "run", str(campaign_path), "--store",
             str(tmp_path / "store"), "--quiet"]
        )
        assert code == 0
        assert "3 simulated" in capsys.readouterr().out


class TestSmokeJobs:
    def test_parallel_smoke_matches_serial(self, tmp_path):
        from repro.scenario.smoke import run_smoke

        scenario = tmp_path / "s.json"
        scenario.write_text(
            json.dumps(
                {
                    "name": "smoke_sweep",
                    "workload": "web",
                    "base": "quick",
                    "sweep": {"scheme": ["wb", "lbica"]},
                }
            )
        )
        broken = tmp_path / "broken.json"
        broken.write_text("{not json")
        serial = run_smoke([scenario, broken], horizon_intervals=2, verbose=False)
        parallel = run_smoke(
            [scenario, broken], horizon_intervals=2, verbose=False, jobs=2
        )
        assert serial == parallel
        assert str(broken) in serial["errors"]
        assert len(serial["files"][str(scenario)]) == 2

    def test_jobs_validation(self):
        from repro.scenario.smoke import main, run_smoke

        with pytest.raises(ValueError):
            run_smoke([], jobs=0)
        assert main(["--jobs", "0", "whatever.json"]) == 2
