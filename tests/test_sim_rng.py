"""Unit tests for the named random-stream registry."""

import pytest

from repro.sim.rng import RngRegistry, stable_key


class TestStableKey:
    def test_deterministic(self):
        assert stable_key("ssd.jitter") == stable_key("ssd.jitter")

    def test_distinct_names_distinct_keys(self):
        assert stable_key("a") != stable_key("b")

    def test_32bit_range(self):
        for name in ("", "x", "a.very.long.stream.name"):
            assert 0 <= stable_key(name) <= 0xFFFFFFFF


class TestRegistry:
    def test_same_name_returns_same_generator(self):
        rngs = RngRegistry(1)
        assert rngs.stream("a") is rngs.stream("a")

    def test_streams_are_independent_of_creation_order(self):
        r1 = RngRegistry(42)
        r2 = RngRegistry(42)
        # create in different orders
        a1 = r1.stream("alpha").random(5).tolist()
        b1 = r1.stream("beta").random(5).tolist()
        b2 = r2.stream("beta").random(5).tolist()
        a2 = r2.stream("alpha").random(5).tolist()
        assert a1 == a2
        assert b1 == b2

    def test_different_seeds_differ(self):
        x = RngRegistry(1).stream("s").random(8).tolist()
        y = RngRegistry(2).stream("s").random(8).tolist()
        assert x != y

    def test_different_names_differ(self):
        rngs = RngRegistry(7)
        assert rngs.stream("a").random(8).tolist() != rngs.stream("b").random(8).tolist()

    def test_negative_seed_rejected(self):
        with pytest.raises(ValueError):
            RngRegistry(-1)

    def test_fork_changes_streams(self):
        base = RngRegistry(9)
        fork = base.fork(1)
        assert fork.seed != base.seed
        assert (
            base.stream("s").random(4).tolist() != fork.stream("s").random(4).tolist()
        )

    def test_fork_deterministic(self):
        assert RngRegistry(9).fork(3).seed == RngRegistry(9).fork(3).seed

    def test_stream_names_sorted(self):
        rngs = RngRegistry(0)
        rngs.stream("zeta")
        rngs.stream("alpha")
        assert rngs.stream_names == ["alpha", "zeta"]
