"""Tier-1 guard for the docs: every intra-repo markdown link resolves."""

import importlib.util
from pathlib import Path

_REPO = Path(__file__).resolve().parent.parent

_spec = importlib.util.spec_from_file_location(
    "check_markdown_links", _REPO / "tools" / "check_markdown_links.py"
)
linkcheck = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(linkcheck)


def test_default_doc_set_exists():
    for doc in linkcheck.DEFAULT_DOCS:
        assert (_REPO / doc).is_file(), doc


def test_no_broken_links_in_default_docs():
    paths = [_REPO / doc for doc in linkcheck.DEFAULT_DOCS]
    assert linkcheck.broken_links(paths) == []


def test_broken_link_detected(tmp_path):
    doc = tmp_path / "doc.md"
    doc.write_text(
        "[ok](existing.md) and [bad](missing.md) and "
        "[ext](https://example.com) and [frag](#section)\n"
    )
    (tmp_path / "existing.md").write_text("hi\n")
    problems = linkcheck.broken_links([doc])
    assert len(problems) == 1
    assert "missing.md" in problems[0]


def test_anchor_suffix_checks_file_part_only(tmp_path):
    doc = tmp_path / "doc.md"
    doc.write_text("[sect](other.md#some-anchor)\n")
    (tmp_path / "other.md").write_text("hi\n")
    assert linkcheck.broken_links([doc]) == []


def test_cli_reports_success(capsys):
    assert linkcheck.main([]) == 0
    assert "all intra-repo links resolve" in capsys.readouterr().out


def test_cli_missing_input(tmp_path, capsys):
    assert linkcheck.main([str(tmp_path / "nope.md")]) == 2
