"""Unit tests for the iostat/blktrace substrates and the trace parser."""

from collections import Counter

import pytest

from repro.io.request import DeviceOp, OpTag, Request
from repro.trace.blktrace import BlkTracer
from repro.trace.iostat import IostatMonitor, eq1_queue_time
from repro.trace.parser import (
    TraceParseError,
    dumps_trace,
    load_trace,
    loads_trace,
    save_trace,
)
from repro.trace.records import TraceRecord


def read_op(lba=0):
    return DeviceOp(lba, 1, is_write=False, tag=OpTag.READ)


class TestEq1:
    def test_formula(self):
        assert eq1_queue_time(10, 100.0) == 1000.0
        assert eq1_queue_time(0, 100.0) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            eq1_queue_time(-1, 1.0)
        with pytest.raises(ValueError):
            eq1_queue_time(1, -1.0)


class TestBlkTracer:
    def test_records_qdc_transitions(self, sim, ssd):
        tracer = BlkTracer(sim)
        tracer.attach(ssd)
        ssd.submit(read_op())
        sim.run()
        assert [r.action for r in tracer.records] == ["Q", "D", "C"]

    def test_double_attach_rejected(self, sim, ssd):
        tracer = BlkTracer(sim)
        tracer.attach(ssd)
        with pytest.raises(ValueError):
            tracer.attach(ssd)

    def test_queue_snapshot_matches_pending(self, sim, ssd):
        tracer = BlkTracer(sim)
        tracer.attach(ssd)
        for i in range(3):
            ssd.submit(DeviceOp(i * 10, 1, is_write=True, tag=OpTag.PROMOTE))
        snap = tracer.queue_snapshot("ssd")
        # one op is in flight (depth 1), two pending
        assert snap[OpTag.PROMOTE] == 2

    def test_queue_mix_fractions(self, sim, ssd):
        tracer = BlkTracer(sim)
        tracer.attach(ssd)
        ssd.submit(read_op(0))  # goes in flight
        ssd.submit(read_op(100))
        ssd.submit(DeviceOp(200, 1, is_write=True, tag=OpTag.WRITE))
        mix = tracer.queue_mix("ssd")
        assert mix["R"] == pytest.approx(0.5)
        assert mix["W"] == pytest.approx(0.5)

    def test_mix_of_unknown_device_raises(self, sim):
        tracer = BlkTracer(sim)
        with pytest.raises(KeyError):
            tracer.queue_snapshot("nope")

    def test_window_counts_reset_on_take(self, sim, ssd):
        tracer = BlkTracer(sim)
        tracer.attach(ssd)
        ssd.submit(read_op(0))
        counts = tracer.take_window_counts("ssd")
        assert counts[OpTag.READ] == 1
        assert tracer.take_window_counts("ssd") == Counter()

    def test_ring_buffer_drops_old_records(self, sim, ssd):
        tracer = BlkTracer(sim, capacity=5)
        tracer.attach(ssd)
        for i in range(10):
            ssd.submit(read_op(i * 100))
        sim.run()
        assert len(tracer.records) == 5
        assert tracer.dropped > 0

    def test_disabled_tracer_records_nothing(self, sim, ssd):
        tracer = BlkTracer(sim)
        tracer.attach(ssd)
        tracer.enabled = False
        ssd.submit(read_op())
        sim.run()
        assert len(tracer.records) == 0


class TestIostatMonitor:
    def test_samples_every_interval(self, sim, ssd, hdd):
        monitor = IostatMonitor(sim, ssd, hdd, interval_us=100.0)
        monitor.start()
        sim.run(until=1000.0)
        assert len(monitor.samples) == 10
        assert monitor.samples[0].t_end == pytest.approx(100.0)

    def test_queue_peaks_captured(self, sim, ssd, hdd):
        monitor = IostatMonitor(sim, ssd, hdd, interval_us=10_000.0)
        monitor.start()
        for i in range(5):
            ssd.submit(read_op(i * 100))
        sim.run(until=10_000.0)
        assert monitor.samples[0].ssd_qsize_max == 5
        assert monitor.samples[0].cache_qtime > 0

    def test_completion_accounting(self, sim, ssd, hdd):
        monitor = IostatMonitor(sim, ssd, hdd, interval_us=10_000.0)
        monitor.start()
        req = Request(0.0, 0, 1, False)
        req.add_wait()
        req.op_done(500.0)
        monitor.record_completion(req)
        sim.run(until=10_000.0)
        s = monitor.samples[0]
        assert s.completed == 1
        assert s.reads == 1
        assert s.avg_latency == pytest.approx(500.0)
        assert s.max_latency == pytest.approx(500.0)

    def test_accumulator_resets_between_intervals(self, sim, ssd, hdd):
        monitor = IostatMonitor(sim, ssd, hdd, interval_us=100.0)
        monitor.start()
        req = Request(0.0, 0, 1, True)
        req.add_wait()
        req.op_done(10.0)
        monitor.record_completion(req)
        sim.run(until=300.0)
        assert monitor.samples[0].completed == 1
        assert monitor.samples[1].completed == 0

    def test_bottleneck_flag(self, sim, ssd, hdd):
        monitor = IostatMonitor(sim, ssd, hdd, interval_us=100.0)
        monitor.start()
        for i in range(50):
            ssd.submit(read_op(i * 100))
        sim.run(until=100.0)
        assert monitor.samples[0].bottleneck_is_cache

    def test_invalid_interval_rejected(self, sim, ssd, hdd):
        with pytest.raises(ValueError):
            IostatMonitor(sim, ssd, hdd, interval_us=0)

    def test_on_sample_callback(self, sim, ssd, hdd):
        seen = []
        monitor = IostatMonitor(sim, ssd, hdd, 100.0, on_sample=seen.append)
        monitor.start()
        sim.run(until=250.0)
        assert len(seen) == 2


class TestTraceParser:
    def _records(self):
        return [
            TraceRecord(1.5, "ssd", "Q", OpTag.READ, False, 100, 1, 7),
            TraceRecord(2.5, "ssd", "D", OpTag.READ, False, 100, 1, 7),
            TraceRecord(9.0, "hdd", "C", OpTag.EVICT, True, 200, 8, 8),
        ]

    def test_round_trip_string(self):
        recs = self._records()
        assert loads_trace(dumps_trace(recs)) == recs

    def test_round_trip_file(self, tmp_path):
        recs = self._records()
        path = tmp_path / "trace.txt"
        assert save_trace(recs, path) == 3
        assert load_trace(path) == recs

    def test_comments_and_blanks_ignored(self):
        text = "# header\n\n1.0 ssd Q R R 5 1 1\n"
        assert len(loads_trace(text)) == 1

    def test_malformed_field_count(self):
        with pytest.raises(TraceParseError) as err:
            loads_trace("1.0 ssd Q R R 5 1\n")
        assert err.value.lineno == 1

    def test_bad_action(self):
        with pytest.raises(TraceParseError):
            loads_trace("1.0 ssd X R R 5 1 1\n")

    def test_bad_tag(self):
        with pytest.raises(TraceParseError):
            loads_trace("1.0 ssd Q Z R 5 1 1\n")

    def test_bad_rw(self):
        with pytest.raises(TraceParseError):
            loads_trace("1.0 ssd Q R B 5 1 1\n")

    def test_bad_numbers(self):
        with pytest.raises(TraceParseError):
            loads_trace("abc ssd Q R R 5 1 1\n")
        with pytest.raises(TraceParseError):
            loads_trace("1.0 ssd Q R R 5 0 1\n")  # zero nblocks
        with pytest.raises(TraceParseError):
            loads_trace("-1.0 ssd Q R R 5 1 1\n")  # negative time


class TestCountersOnlyMode:
    """record_events=False: identical statistics, no retained records."""

    def test_counters_only_run_matches_full_run(self):
        from repro.config import quick_config
        from repro.scenario import get_scenario
        from repro.scenario.fingerprint import stats_fingerprint

        spec = get_scenario("fig4_single_vm")
        full = spec.build(quick_config(7), trace_records=True)
        full_result = full.run()
        lean = spec.build(quick_config(7), trace_records=False)
        lean_result = lean.run()
        # The fingerprint pins everything the characterizer consumes
        # (window counters, queue snapshots) — records are pure output.
        assert stats_fingerprint(full_result) == stats_fingerprint(lean_result)
        assert len(full.tracer.records) > 0
        assert len(lean.tracer.records) == 0

    def test_scenario_run_uses_counters_only_mode(self):
        # ScenarioSpec.run drops the system object, so building per-op
        # trace records there would be pure waste; build() must default
        # to full records for direct (replay/inspection) construction.
        import inspect

        from repro.scenario.spec import ScenarioSpec

        src = inspect.getsource(ScenarioSpec.run)
        assert "trace_records=False" in src
