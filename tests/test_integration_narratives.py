"""End-to-end narrative tests: each paper mechanism on a tiny system.

These tests build micro-systems (small caches, short runs) where the
expected physics is computable by hand, and assert the *mechanism*, not
tuned magnitudes.
"""

from repro.cache.controller import CacheController
from repro.cache.store import CacheStore
from repro.cache.write_policy import WritePolicy
from repro.config import quick_config
from repro.devices.base import StorageDevice
from repro.devices.hdd import HddConfig, HddModel
from repro.devices.ssd import SsdConfig, SsdModel
from repro.experiments.system import ExperimentSystem
from repro.io.request import Request
from repro.sim.engine import Simulator
from repro.workloads.synthetic import (
    mixed_read_write_workload,
    random_read_workload,
    random_write_workload,
    sequential_read_workload,
)


def micro_system(policy=WritePolicy.WB):
    sim = Simulator()
    ssd = StorageDevice(sim, "ssd", SsdModel(SsdConfig(jitter_sigma=0.0)), depth=1)
    hdd = StorageDevice(sim, "hdd", HddModel(HddConfig(jitter_sigma=0.0)), depth=1)
    store = CacheStore(64, associativity=8)
    controller = CacheController(sim, ssd, hdd, store, policy=policy)
    return sim, ssd, hdd, store, controller


class TestWoStopsPromotionLoad:
    """Group 1 remedy: WO removes promotion writes from the SSD."""

    def test_promotion_traffic_difference(self):
        for policy, promotes in ((WritePolicy.WB, True), (WritePolicy.WO, False)):
            sim, ssd, hdd, store, controller = micro_system(policy)
            for i in range(20):
                controller.submit(Request(sim.now, 1000 + i * 10, 1, False))
            sim.run()
            ssd_writes = ssd.stats.writes
            if promotes:
                assert ssd_writes == 20  # every miss promoted
            else:
                assert ssd_writes == 0


class TestRoShedsWriteLoad:
    """Group 2 remedy: RO sends writes to the disk's write cache."""

    def test_ssd_write_traffic_eliminated(self):
        sim, ssd, hdd, store, controller = micro_system(WritePolicy.RO)
        for i in range(20):
            controller.submit(Request(sim.now, i * 50, 1, True))
        sim.run()
        assert ssd.stats.writes == 0
        assert hdd.stats.blocks_written == 20

    def test_disk_write_cache_makes_bypass_cheap(self):
        """A bypassed write (disk cache ~400µs) beats waiting behind a
        loaded SSD queue (N × write cost)."""
        sim, ssd, hdd, store, controller = micro_system(WritePolicy.WB)
        reqs = [Request(0.0, i * 50, 1, True) for i in range(30)]
        for r in reqs:
            controller.submit(r)
        sim.run()
        wb_mean = sum(r.latency for r in reqs) / len(reqs)

        sim2, ssd2, hdd2, store2, controller2 = micro_system(WritePolicy.RO)
        reqs2 = [Request(0.0, i * 50, 1, True) for i in range(30)]
        for r in reqs2:
            controller2.submit(r)
        sim2.run()
        ro_mean = sum(r.latency for r in reqs2) / len(reqs2)
        assert ro_mean < wb_mean


class TestTailBypassKeepsHead:
    """Group 3 remedy: the queue head keeps cache service."""

    def test_head_requests_not_bypassed(self):
        sim, ssd, hdd, store, controller = micro_system(WritePolicy.WB)
        from repro.core.balancer import TailBypassBalancer

        balancer = TailBypassBalancer(controller, ssd, hdd, max_bypass_per_round=8)
        reqs = [Request(0.0, 100 + i * 50, 1, True) for i in range(20)]
        for r in reqs:
            controller.submit(r)
        balancer.rebalance(0.0)
        sim.run()
        head = reqs[:2]
        tail = reqs[-2:]
        assert not any(r.bypassed for r in head)
        assert any(r.bypassed for r in reqs)
        # bypassed requests were still served correctly
        assert all(r.done for r in reqs)


class TestSyntheticGroupDetection:
    """Each synthetic workload must be classified into its paper group."""

    def _detected_groups(self, workload):
        cfg = quick_config()
        system = ExperimentSystem(workload, "lbica", cfg)
        result = system.run()
        return {
            d.group.value
            for d in result.lbica_decisions
            if d.burst and d.group is not None
        }

    def test_random_read_detects_group1(self):
        wl = random_read_workload(15_000.0, n_intervals=40)
        groups = self._detected_groups(wl)
        assert "group1_random_read" in groups

    def test_mixed_rw_detects_group2(self):
        wl = mixed_read_write_workload(15_000.0, n_intervals=40)
        groups = self._detected_groups(wl)
        assert "group2_mixed_rw" in groups

    def test_random_write_detects_group3(self):
        wl = random_write_workload(15_000.0, n_intervals=40)
        groups = self._detected_groups(wl)
        assert groups & {"group3_random_write", "group3_sequential_write"}

    def test_sequential_read_never_bottlenecks_disk_side(self):
        """Group 4: the scan is served by the disk as a sequential streak;
        whatever bursts appear must not push LBICA off WB for long."""
        wl = sequential_read_workload(15_000.0, n_intervals=30)
        cfg = quick_config()
        system = ExperimentSystem(wl, "lbica", cfg)
        result = system.run()
        assert result.completed > 0
        # sequential reads stream from the disk cheaply
        assert result.mean_latency < 50_000.0


class TestLbicaEndToEndRelief:
    """After LBICA acts, the cache queue must actually deflate."""

    def test_cache_queue_deflates_after_assignment(self):
        cfg = quick_config()
        result = ExperimentSystem.build("tpcc", "lbica", cfg).run()
        assignments = [
            d.interval_index
            for d in result.lbica_decisions
            if d.policy_assigned is not None
        ]
        assert assignments
        t = assignments[0]
        series = result.cache_load_series()
        before = max(series[max(t - 3, 0) : t + 1])
        after_window = series[t + 5 : t + 15]
        assert after_window
        assert max(after_window) < before
