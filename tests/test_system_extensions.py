"""Tests for the system-level extensions: disk arrays, utilization, sweeps."""

from dataclasses import replace

import pytest

from repro.config import quick_config
from repro.experiments.ablation import run_disk_headroom_sweep
from repro.experiments.system import ExperimentSystem


class TestArrayBackedSubsystem:
    def test_multi_disk_config_builds_array(self):
        from repro.devices.array import StripedArrayModel

        cfg = replace(quick_config(), hdd_disks=4)
        system = ExperimentSystem.build("web", "wb", cfg)
        assert isinstance(system.hdd.model, StripedArrayModel)
        assert system.hdd.depth == cfg.hdd_depth * 4

    def test_single_disk_config_keeps_hdd_model(self):
        from repro.devices.hdd import HddModel

        system = ExperimentSystem.build("web", "wb", quick_config())
        assert isinstance(system.hdd.model, HddModel)

    def test_invalid_disk_count_rejected(self):
        cfg = replace(quick_config(), hdd_disks=0)
        with pytest.raises(ValueError):
            cfg.validate()

    def test_array_reduces_disk_queue_under_lbica(self):
        """More spindles absorb LBICA's bypassed traffic with less disk
        backlog on the write-heavy web burst."""
        single = ExperimentSystem.build("web", "lbica", quick_config()).run()
        quad = ExperimentSystem.build(
            "web", "lbica", replace(quick_config(), hdd_disks=4)
        ).run()

        def mean(series):
            return sum(series) / max(len(series), 1)

        assert mean(quad.disk_load_series()) < mean(single.disk_load_series())

    def test_headroom_sweep_runs(self):
        result = run_disk_headroom_sweep(
            "web", quick_config(), disk_counts=(1, 2)
        )
        assert set(result.rows) == {
            "lbica, 1 spindle(s)",
            "lbica, 2 spindle(s)",
        }


class TestUtilizationSamples:
    def test_util_fields_populated(self):
        result = ExperimentSystem.build("web", "wb", quick_config()).run()
        utils = [s.ssd_util for s in result.samples]
        assert any(u > 0 for u in utils)
        # utilization is busy-time per wall-time: bounded by depth
        assert all(0.0 <= s.hdd_util <= 10.0 for s in result.samples)

    def test_wb_burst_saturates_ssd(self):
        """During the web write burst the WB cache's SSD runs at ~full
        utilization — the saturation LBICA detects via Eq. 1."""
        result = ExperimentSystem.build("web", "wb", quick_config()).run()
        burst_utils = [s.ssd_util for s in result.samples[3:30]]
        assert max(burst_utils) > 0.9

    def test_lbica_relieves_ssd_utilization(self):
        wb = ExperimentSystem.build("web", "wb", quick_config()).run()
        lbica = ExperimentSystem.build("web", "lbica", quick_config()).run()
        tail = slice(60, 150)

        def mean(vals):
            vals = list(vals)
            return sum(vals) / max(len(vals), 1)

        assert mean(s.ssd_util for s in lbica.samples[tail]) < mean(
            s.ssd_util for s in wb.samples[tail]
        )

    def test_util_series_extractable(self):
        from repro.analysis.series import series_from_samples

        result = ExperimentSystem.build("web", "wb", quick_config()).run()
        series = series_from_samples(result.samples, "ssd_util")
        assert len(series) == len(result.samples)
