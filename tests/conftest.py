"""Shared fixtures: simulators, devices, controllers, tiny systems."""

from __future__ import annotations

import pytest

from repro.cache.controller import CacheController
from repro.cache.store import CacheStore
from repro.cache.write_policy import WritePolicy
from repro.devices.base import StorageDevice
from repro.devices.hdd import HddConfig, HddModel
from repro.devices.ssd import SsdConfig, SsdModel
from repro.sim.engine import Simulator


@pytest.fixture
def sim() -> Simulator:
    """A fresh simulator."""
    return Simulator()


@pytest.fixture
def ssd(sim) -> StorageDevice:
    """A deterministic (jitter-free) SSD device."""
    model = SsdModel(SsdConfig(jitter_sigma=0.0))
    return StorageDevice(sim, "ssd", model, depth=1)


@pytest.fixture
def hdd(sim) -> StorageDevice:
    """A deterministic (jitter-free) HDD device."""
    model = HddModel(HddConfig(jitter_sigma=0.0))
    return StorageDevice(sim, "hdd", model, depth=1)


@pytest.fixture
def store() -> CacheStore:
    """A small 8-way cache store (64 blocks)."""
    return CacheStore(64, associativity=8, replacement="lru")


@pytest.fixture
def controller(sim, ssd, hdd, store) -> CacheController:
    """A WB cache controller over the deterministic devices."""
    return CacheController(sim, ssd, hdd, store, policy=WritePolicy.WB)


def drain(sim: Simulator) -> None:
    """Run the simulator until no events remain."""
    sim.run()
