"""Public-API completeness: every module imports, every __all__ resolves."""

import importlib
import pkgutil

import pytest

import repro

ALL_MODULES = sorted(
    name
    for _, name, _ in pkgutil.walk_packages(repro.__path__, prefix="repro.")
    if not name.endswith("__main__")
)


@pytest.mark.parametrize("module_name", ALL_MODULES)
def test_module_imports(module_name):
    importlib.import_module(module_name)


@pytest.mark.parametrize("module_name", ALL_MODULES)
def test_dunder_all_resolves(module_name):
    module = importlib.import_module(module_name)
    exported = getattr(module, "__all__", None)
    if exported is None:
        return
    for name in exported:
        assert hasattr(module, name), f"{module_name}.__all__ lists missing {name!r}"


def test_top_level_exports():
    for name in repro.__all__:
        assert hasattr(repro, name)


def test_every_public_module_has_docstring():
    for module_name in ALL_MODULES:
        module = importlib.import_module(module_name)
        assert module.__doc__, f"{module_name} lacks a module docstring"


def test_package_version():
    assert repro.__version__ == "1.0.0"
