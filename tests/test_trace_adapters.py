"""Tests for the trace format-adapter layer: registry + built-in formats."""

import pytest

from repro.io.request import BLOCK_BYTES, OpTag
from repro.trace.adapters import (
    TraceAdapter,
    adapter_descriptions,
    adapter_names,
    get_adapter,
    register_adapter,
)
from repro.trace.parser import (
    TraceParseError,
    dumps_trace,
    iter_trace,
    load_trace,
    loads_trace,
    save_trace,
)
from repro.trace.records import TraceRecord


def rec(time, lba=0, n=8, is_write=False, op_id=0, device="ssd", action="Q"):
    tag = OpTag.WRITE if is_write else OpTag.READ
    return TraceRecord(time, device, action, tag, is_write, lba, n, op_id)


class TestRegistry:
    def test_builtins_registered(self):
        names = adapter_names()
        assert "native" in names
        assert "blkparse" in names
        assert "msr" in names

    def test_native_lists_first(self):
        assert adapter_names()[0] == "native"

    def test_descriptions_cover_every_name(self):
        descriptions = adapter_descriptions()
        assert set(descriptions) == set(adapter_names())
        assert all(descriptions.values())

    def test_unknown_adapter_error_names_registry(self):
        with pytest.raises(ValueError, match="repro.trace.adapters"):
            get_adapter("nope")
        with pytest.raises(ValueError, match="native"):
            get_adapter("nope")

    def test_get_adapter_returns_fresh_instances(self):
        """Stateful adapters (MSR rebasing) must not share state."""
        a = get_adapter("msr")
        b = get_adapter("msr")
        assert a is not b
        a.parse_line(1, "1000,usr,0,Read,0,4096")
        # b has seen nothing: its t0 rebases independently
        parsed = b.parse_line(1, "5000,usr,0,Read,0,4096")
        assert parsed.time == 0.0

    def test_duplicate_registration_rejected(self):
        class Dup(TraceAdapter):
            name = "native"

        with pytest.raises(ValueError, match="already registered"):
            register_adapter(Dup)

    def test_non_subclass_rejected(self):
        with pytest.raises(TypeError):
            register_adapter(object)

    def test_empty_name_rejected(self):
        class NoName(TraceAdapter):
            name = ""

        with pytest.raises(ValueError, match="non-empty"):
            register_adapter(NoName)

    def test_read_only_adapter_raises_on_format(self):
        class ReadOnly(TraceAdapter):
            name = "readonly-test"

        with pytest.raises(NotImplementedError):
            ReadOnly().format_record(rec(0.0))


class TestNativeAdapter:
    def test_round_trip(self):
        records = [rec(1.5, lba=8, op_id=1), rec(2.5, lba=16, is_write=True, op_id=2)]
        assert loads_trace(dumps_trace(records)) == records

    def test_parse_error_carries_path(self, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_text("1.0 ssd Q R R 0 8 0\nnot a trace line\n")
        with pytest.raises(TraceParseError) as err:
            load_trace(path)
        assert err.value.path == str(path)
        assert err.value.lineno == 2
        assert str(path) in str(err.value)

    def test_string_parse_error_has_no_path(self):
        with pytest.raises(TraceParseError) as err:
            loads_trace("garbage line here\n")
        assert err.value.path is None
        assert "line 1" in str(err.value)

    def test_iter_trace_is_lazy(self, tmp_path):
        """The bad line must not surface until iteration reaches it."""
        path = tmp_path / "tail.trace"
        path.write_text("1.0 ssd Q R R 0 8 0\nbroken\n")
        it = iter_trace(path)
        first = next(it)
        assert first.time == 1.0
        with pytest.raises(TraceParseError):
            next(it)

    def test_save_and_load(self, tmp_path):
        records = [rec(float(i), lba=i, op_id=i) for i in range(5)]
        path = tmp_path / "t.trace"
        assert save_trace(records, path) == 5
        assert load_trace(path) == records


class TestBlkparseAdapter:
    GOOD = "259,0 0 42 0.001204512 833 Q R 81920 + 8 [fio]"

    def test_parse_q_line(self):
        (parsed,) = loads_trace(self.GOOD, adapter="blkparse")
        assert parsed.time == pytest.approx(1204.512)
        assert parsed.device == "259,0"
        assert parsed.action == "Q"
        assert parsed.lba == 81920
        assert parsed.nblocks == 8
        assert parsed.op_id == 42
        assert not parsed.is_write

    def test_write_modifiers_accepted(self):
        line = "259,0 0 1 0.000000001 833 Q WS 0 + 8 [fio]"
        (parsed,) = loads_trace(line, adapter="blkparse")
        assert parsed.is_write
        assert parsed.tag is OpTag.WRITE

    def test_foreign_actions_skipped_even_without_payload(self):
        """P/U/m lines are short (< 10 fields) but must skip, not raise."""
        text = "\n".join(
            [
                "259,0 0 3 0.000108110 833 P N [fio]",
                "259,0 0 4 0.000109000 833 U N [fio] 1",
                "259,0 0 5 0.000110000 833 m N cfq833 inserted",
                "259,0 0 6 0.000111000 833 G R 81920 + 8 [fio]",
                self.GOOD,
            ]
        )
        records = loads_trace(text, adapter="blkparse")
        assert len(records) == 1
        assert records[0].op_id == 42

    def test_dataless_rwbs_skipped(self):
        line = "259,0 0 7 0.000200000 833 Q N 0 + 0 [fio]"
        assert loads_trace(line, adapter="blkparse") == []

    def test_malformed_payload_raises(self):
        line = "259,0 0 42 0.001204512 833 Q R 81920 * 8 [fio]"
        with pytest.raises(TraceParseError, match="sector \\+ nblocks"):
            loads_trace(line, adapter="blkparse")

    def test_round_trip_exact(self):
        """Timestamps go through integer nanoseconds, so the dump→parse
        round-trip is bit-exact even for awkward decimals."""
        records = [
            rec(1204.512, lba=81920, op_id=42, device="259,0"),
            rec(999999.999, lba=8, is_write=True, op_id=43, device="259,0"),
        ]
        assert loads_trace(dumps_trace(records, "blkparse"), "blkparse") == records

    def test_example_file_parses(self):
        records = load_trace("examples/traces/fio_seq.blkparse", adapter="blkparse")
        assert len(records) == 12
        times = [r.time for r in records]
        assert times == sorted(times)


class TestMsrAdapter:
    def test_rebases_to_first_row(self):
        text = (
            "Timestamp,Hostname,DiskNumber,Type,Offset,Size\n"
            "128166372003061629,usr,0,Read,7014609920,24576\n"
            "128166372013061629,usr,0,Write,7014609920,4096\n"
        )
        records = loads_trace(text, adapter="msr")
        assert [r.time for r in records] == [0.0, 1_000_000.0]
        assert [r.op_id for r in records] == [0, 1]
        assert records[0].device == "usr.0"

    def test_bytes_become_blocks(self):
        (parsed,) = loads_trace("100,h,1,Read,8192,6000", adapter="msr")
        assert parsed.lba == 8192 // BLOCK_BYTES
        assert parsed.nblocks == 2  # 6000 B rounds up to two 4-KiB blocks

    def test_response_time_column_ignored(self):
        (parsed,) = loads_trace("100,h,1,Write,0,4096,5012", adapter="msr")
        assert parsed.is_write

    def test_unsorted_input_rejected(self):
        text = "2000,h,0,Read,0,4096\n1000,h,0,Read,0,4096\n"
        with pytest.raises(TraceParseError, match="not sorted"):
            loads_trace(text, adapter="msr")

    def test_bad_type_rejected(self):
        with pytest.raises(TraceParseError, match="Read or Write"):
            loads_trace("100,h,0,Trim,0,4096", adapter="msr")

    def test_round_trip(self):
        text = (
            "128166372003061629,usr,0,Read,7014609920,24576\n"
            "128166372013061629,usr,1,Write,4096,4096\n"
        )
        records = loads_trace(text, adapter="msr")
        assert loads_trace(dumps_trace(records, "msr"), "msr") == records

    def test_example_file_parses(self):
        records = load_trace("examples/traces/msr_sample.csv", adapter="msr")
        assert len(records) == 15
        assert records[0].time == 0.0
        assert all(r.action == "Q" for r in records)
