"""Integration tests: the wired system, runner, and scheme behaviours."""

import pytest

from repro.cache.write_policy import WritePolicy
from repro.config import quick_config
from repro.experiments.runner import ExperimentRunner
from repro.experiments.system import SCHEMES, WORKLOADS, ExperimentSystem


@pytest.fixture(scope="module")
def quick_runner():
    """A module-scoped memoizing runner on the quick configuration."""
    return ExperimentRunner(quick_config())


class TestBuild:
    def test_unknown_workload_rejected(self):
        with pytest.raises(ValueError):
            ExperimentSystem.build("nope", "wb", quick_config())

    def test_unknown_scheme_rejected(self):
        wl = WORKLOADS["tpcc"](15_000.0, cache_blocks=64, rate_scale=1.0, max_outstanding=8)
        with pytest.raises(ValueError):
            ExperimentSystem(wl, "nope", quick_config())

    def test_all_registered_combinations_construct(self):
        cfg = quick_config()
        for workload in ("tpcc", "mail", "web"):
            for scheme in SCHEMES:
                ExperimentSystem.build(workload, scheme, cfg)

    def test_warm_cache_populates_store(self):
        system = ExperimentSystem.build("tpcc", "wb", quick_config())
        count = system.warm_cache()
        assert count > 0
        assert system.store.occupied > 0


class TestRunResults:
    def test_wb_run_completes_requests(self, quick_runner):
        res = quick_runner.run("tpcc", "wb")
        assert res.completed > 1000
        assert res.mean_latency > 0
        assert len(res.samples) == 200  # TPC-C interval count
        assert res.cache_stats["read_hit_ratio"] > 0.9

    def test_lbica_assigns_wo_on_tpcc(self, quick_runner):
        res = quick_runner.run("tpcc", "lbica")
        policies = [p.policy for p in res.policy_log]
        assert policies[0] is WritePolicy.WB
        assert WritePolicy.WO in policies

    def test_lbica_mail_policy_story(self, quick_runner):
        res = quick_runner.run("mail", "lbica")
        policies = [p.policy.value for p in res.policy_log]
        # the paper's sequence must appear in order: RO then WO then WB
        assert policies[0] == "WB"
        seq = [p for p in policies[1:] if p in ("RO", "WO", "WB")]
        joined = "".join(seq)
        assert "RO" in seq
        assert joined.find("RO") < joined.find("WO") < joined.rfind("WB")

    def test_lbica_web_assigns_ro(self, quick_runner):
        res = quick_runner.run("web", "lbica")
        assigned = [p.policy for p in res.policy_log[1:]]
        assert assigned and assigned[0] is WritePolicy.RO

    def test_sib_runs_and_bypasses(self, quick_runner):
        res = quick_runner.run("mail", "sib")
        assert res.sib_rounds > 0
        assert res.sib_overhead_us > 0

    def test_latency_ordering_wb_sib_lbica(self, quick_runner):
        for workload in ("tpcc", "mail", "web"):
            wb = quick_runner.run(workload, "wb").mean_latency
            sib = quick_runner.run(workload, "sib").mean_latency
            lbica = quick_runner.run(workload, "lbica").mean_latency
            assert lbica < wb, workload
            assert lbica < sib, workload

    def test_cache_load_ordering(self, quick_runner):
        def mean(r):
            return sum(r.cache_load_series()) / len(r.samples)

        for workload in ("tpcc", "mail", "web"):
            wb = quick_runner.run(workload, "wb")
            lb = quick_runner.run(workload, "lbica")
            assert mean(lb) < mean(wb), workload

    def test_series_lengths_match_interval_counts(self, quick_runner):
        assert len(quick_runner.run("web", "wb").samples) == 175
        assert len(quick_runner.run("mail", "wb").samples) == 200

    def test_summary_is_readable(self, quick_runner):
        text = quick_runner.run("tpcc", "wb").summary()
        assert "tpcc/wb" in text and "requests" in text


class TestRunner:
    def test_memoization(self, quick_runner):
        a = quick_runner.run("tpcc", "wb")
        b = quick_runner.run("tpcc", "wb")
        assert a is b

    def test_invalidate_clears_cache(self):
        runner = ExperimentRunner(quick_config())
        a = runner.run("tpcc", "wb")
        runner.invalidate()
        b = runner.run("tpcc", "wb")
        assert a is not b

    def test_determinism_same_seed(self):
        r1 = ExperimentRunner(quick_config(seed=5)).run("web", "lbica")
        r2 = ExperimentRunner(quick_config(seed=5)).run("web", "lbica")
        assert r1.completed == r2.completed
        assert r1.mean_latency == pytest.approx(r2.mean_latency)
        assert r1.cache_load_series() == r2.cache_load_series()

    def test_different_seeds_differ(self):
        r1 = ExperimentRunner(quick_config(seed=5)).run("web", "wb")
        r2 = ExperimentRunner(quick_config(seed=6)).run("web", "wb")
        assert r1.mean_latency != pytest.approx(r2.mean_latency)
