"""Multi-VM grid bench: consolidated scenarios, serial vs parallel.

Measures the paper-scale consolidated grid — (consolidated3,
bootstorm_neighbors) × (wb, sib, lbica) — both serially and fanned out
across processes, and checks the multi-tenant invariants: per-VM
accounting sums to the aggregate, and LBICA still wins once the cache is
shared.

The parallel variant only beats the serial one on multi-core hosts; on a
single-core CI box it measures pure fan-out overhead (worker startup +
result pickling), which is useful to track too.
"""

from repro.config import paper_config
from repro.experiments.runner import run_grid
from repro.experiments.system import SCHEMES

MT_WORKLOADS = ("consolidated3", "bootstorm_neighbors")


def _check_grid(grid):
    assert len(grid) == len(MT_WORKLOADS) * len(SCHEMES)
    for (workload, _scheme), result in grid.items():
        assert result.completed > 0
        assert len(result.tenant_ids) >= 2, workload
        total = sum(ts["completed"] for ts in result.tenant_stats.values())
        assert total == result.completed
    for workload in MT_WORKLOADS:
        wb = grid[(workload, "wb")]
        lbica = grid[(workload, "lbica")]
        assert lbica.mean_latency < wb.mean_latency, workload


def test_multi_tenant_grid_serial(benchmark):
    """Wall-clock of the consolidated grid, one process."""
    grid = benchmark.pedantic(
        run_grid,
        kwargs=dict(workloads=MT_WORKLOADS, schemes=SCHEMES, config=paper_config()),
        rounds=1,
        iterations=1,
    )
    _check_grid(grid)


def test_multi_tenant_grid_parallel(benchmark):
    """Same grid fanned out across four worker processes."""
    grid = benchmark.pedantic(
        run_grid,
        kwargs=dict(
            workloads=MT_WORKLOADS,
            schemes=SCHEMES,
            config=paper_config(),
            max_workers=4,
        ),
        rounds=1,
        iterations=1,
    )
    _check_grid(grid)
