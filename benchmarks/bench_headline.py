"""Headline bench: the paper's abstract-level percentages.

H1 (cache load vs SIB), H2 (burst-interval cache load), H3 (latency vs
WB/SIB) — direction and ordering must hold; magnitudes are reported
side-by-side with the paper's.
"""

from repro.experiments.headline import generate_headline


def test_headline_claims(benchmark, paper_runner):
    report = benchmark.pedantic(
        generate_headline, args=(paper_runner,), rounds=1, iterations=1
    )
    print()
    print(report.table())
    assert report.all_directions_hold, report.table()
    # the paper's per-workload ordering of SIB-relative gains
    gains = report.latency_gain_vs_sib
    assert gains["tpcc"] == max(gains.values())
    assert gains["mail"] == min(gains.values())


def test_full_grid_simulation(benchmark):
    """Wall-clock of the raw 3×3 paper-scale simulation grid."""
    from repro.config import paper_config
    from repro.experiments.runner import ExperimentRunner

    def run_grid():
        runner = ExperimentRunner(paper_config())
        return runner.run_many()

    grid = benchmark.pedantic(run_grid, rounds=1, iterations=1)
    assert len(grid) == 9
    assert all(r.completed > 0 for r in grid.values())
