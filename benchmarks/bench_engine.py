"""Engine microbenchmarks: event loop, queue, store, device throughput.

Not paper figures — these quantify the substrate itself, so regressions
in the simulator's hot paths are visible.
"""

from repro.cache.store import CacheStore
from repro.devices.base import StorageDevice
from repro.devices.ssd import SsdConfig, SsdModel
from repro.io.device_queue import DeviceQueue
from repro.io.request import DeviceOp, OpTag
from repro.sim.engine import Simulator


def test_event_loop_throughput(benchmark):
    """Schedule + dispatch cost of 10k chained events."""

    def run_chain():
        sim = Simulator()
        count = [0]

        def tick():
            count[0] += 1
            if count[0] < 10_000:
                sim.schedule(1.0, tick)

        sim.schedule(1.0, tick)
        sim.run()
        return count[0]

    assert benchmark(run_chain) == 10_000


def test_device_pipeline_throughput(benchmark):
    """Submit→service→complete cost for 5k SSD reads."""

    def run_device():
        sim = Simulator()
        dev = StorageDevice(
            sim, "ssd", SsdModel(SsdConfig(jitter_sigma=0.0)), depth=4
        )
        for i in range(5000):
            dev.submit(DeviceOp(i * 64, 1, is_write=False, tag=OpTag.READ))
        sim.run()
        return dev.stats.reads

    assert benchmark(run_device) == 5000


def test_queue_merge_throughput(benchmark):
    """Push cost with merging enabled on a contiguous write stream."""

    def run_queue():
        q = DeviceQueue("d", max_merge_blocks=64)
        for i in range(10_000):
            q.push(DeviceOp(i, 1, is_write=True, tag=OpTag.WRITE), float(i))
        return q.stats.merged

    merged = benchmark(run_queue)
    assert merged > 0


def test_cache_store_churn(benchmark):
    """Insert/lookup/evict churn over a footprint 4× the cache."""

    def run_store():
        store = CacheStore(4096, associativity=8)
        for i in range(20_000):
            lba = (i * 2654435761) % 16384
            if store.lookup(lba, float(i)) is None:
                store.insert(lba, float(i), dirty=(i % 3 == 0))
        return store.stats.evictions

    evictions = benchmark(run_store)
    assert evictions > 0
