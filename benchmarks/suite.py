#!/usr/bin/env python3
"""Unified benchmark suite: canonical scenarios, one machine-readable file.

Every run emits ``BENCH_suite.json`` — wall-clock, simulated-IOs/sec,
events processed, and peak RSS per scenario — so the performance
trajectory of the simulator is comparable across commits.  The stats
fingerprint embedded per scenario is deterministic (fixed seeds, no
timing), which is what the golden files under ``benchmarks/golden/``
pin: an optimization must reproduce the fingerprints bit-for-bit or the
``--golden`` check (and the tier-1 golden test) fails.

Scenarios:

- ``fig4_single_vm`` — the canonical single-VM run (TPC-C under LBICA,
  the Fig. 4 configuration).  This is the scenario speedups are quoted
  against.
- ``consolidated3`` — three VMs (TPC-C + mail + web) contending for one
  shared cache under LBICA.
- ``bootstorm_neighbors`` — a VM boot storm landing beside a steady web
  server, under LBICA.
- ``consolidated3_partition`` — the three-VM scenario with statically
  partitioned fair cache shares.
- ``consolidated3_dynshare`` — the three-VM scenario under the
  efficiency-aware dynamic share allocator.
- ``grid_fanout`` — the full 3×3 (workload × scheme) grid through
  ``run_grid(max_workers=N)``, exercising the parallel process fan-out.
- ``trace_replay_stream`` — streaming trace replay at production scale:
  a synthetic trace (10M IOs at paper scale, 150k at ``--quick``) is
  generated lazily and replayed chunk-by-chunk through the simulator.
  The scenario *fails* if the process RSS delta across the replay
  exceeds a fixed budget — the guard that pins replay memory as
  independent of trace length.

Usage::

    PYTHONPATH=src python benchmarks/suite.py --quick
    PYTHONPATH=src python benchmarks/suite.py --quick \
        --golden benchmarks/golden/suite_quick.json       # CI gate
    PYTHONPATH=src python benchmarks/suite.py --quick \
        --update-golden benchmarks/golden/suite_quick.json
    PYTHONPATH=src python benchmarks/suite.py --quick \
        --store results/store       # accumulate the BENCH trajectory

Each document stamps provenance (repro ``__version__``, git commit when
available, per-scenario store keys); ``--store`` additionally writes
every scenario's artifact into a :class:`repro.store.RunStore` and
appends the document to the store's ``bench_history.jsonl``, so
benchmark runs accumulate across invocations instead of overwriting.
"""

from __future__ import annotations

import argparse
import json
import platform
import resource
import sys
import time
from pathlib import Path
from typing import Callable, Optional, Sequence

_REPO_ROOT = Path(__file__).resolve().parent.parent
try:  # allow `python benchmarks/suite.py` without PYTHONPATH=src
    import repro  # noqa: F401
except ImportError:  # pragma: no cover - path bootstrap
    sys.path.insert(0, str(_REPO_ROOT / "src"))

from repro.config import SystemConfig, paper_config, quick_config
from repro.experiments.runner import PAPER_WORKLOADS, run_grid, run_perf_counters
from repro.experiments.system import SCHEMES
from repro.scenario import get_scenario, stats_fingerprint  # noqa: F401 (re-export)
from repro.store import RunKey, RunStore, provenance, stamped_artifact

__all__ = ["SCENARIOS", "run_scenario", "run_suite", "stats_fingerprint", "main"]

#: The scenario quoted in speedup claims (single VM, Fig. 4 shape).
CANONICAL = "fig4_single_vm"


def _peak_rss_kb() -> int:
    """Process-wide peak RSS in KiB (monotone over the process lifetime)."""
    self_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    child_kb = resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss
    return max(self_kb, child_kb)


def _run_single(
    scenario_name: str, config: SystemConfig, store: Optional[RunStore] = None
) -> tuple[dict, dict, Optional[str]]:
    """One registry scenario under the suite's config (timed).

    With a store, the run is written through as a
    :class:`~repro.store.RunArtifact` keyed by (scenario, the *injected*
    config, schema version) — the same key a campaign over the same
    scenario/config would hit — and the key's digest is returned for the
    document's provenance block.
    """
    spec = get_scenario(scenario_name)
    t0 = time.perf_counter()
    result = spec.run(config=config)
    wall = time.perf_counter() - t0
    perf = {**run_perf_counters(result, wall), "peak_rss_kb": _peak_rss_kb()}
    digest = RunKey.for_spec(spec, config=config).digest
    if store is not None:
        # provenance stamping is shared with ExperimentRunner._write_through
        store.put(stamped_artifact(spec, result, config=config, perf=perf))
    return perf, stats_fingerprint(result), digest


def _current_rss_kb() -> int:
    """Current (not peak) RSS in KiB; 0 where /proc is unavailable."""
    try:
        with open("/proc/self/status", encoding="ascii") as status:
            for line in status:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1])
    except OSError:  # pragma: no cover - non-Linux fallback
        pass
    return 0


#: Allowed RSS growth across the replay run (KiB).  Streaming replay
#: holds one ~4k-record chunk at a time, so real growth is near zero;
#: materializing the 10M-record trace would add gigabytes.  256 MiB
#: leaves generous allocator headroom while still failing hard on any
#: return to materialization.
_REPLAY_RSS_BUDGET_KB = 256 * 1024


def _run_trace_replay(
    config: SystemConfig, jobs: int, store: Optional[RunStore] = None
) -> tuple[dict, dict, Optional[str]]:
    """Streaming replay of a synthetic production-scale trace.

    The trace never exists as a file or a list: ``synthetic_trace``
    yields records lazily and :class:`ReplayWorkload` pulls them through
    the chunked scheduler, so this measures the replay engine itself —
    record synthesis, chunk batching, and event dispatch.  The RSS
    guard raises (failing the suite) if memory grows with trace length.
    """
    from repro.sim.engine import Simulator
    from repro.trace.synth import synthetic_trace
    from repro.workloads.replay import ReplayWorkload

    quick = config.interval_us <= 15_000.0
    n = 150_000 if quick else 10_000_000
    mean_gap_us = 50.0  # 20k IOPS mean arrival rate
    rss_before = _current_rss_kb()
    sim = Simulator()
    workload = ReplayWorkload(
        synthetic_trace(n, seed=int(config.seed), mean_gap_us=mean_gap_us),
        duration_us=n * mean_gap_us * 1.5,
    )
    submitted = [0]

    def sink(request) -> None:
        submitted[0] += 1

    t0 = time.perf_counter()
    workload.bind(sim, sink)
    sim.run()
    wall = time.perf_counter() - t0
    rss_delta = max(0, _current_rss_kb() - rss_before)
    if rss_delta > _REPLAY_RSS_BUDGET_KB:
        raise RuntimeError(
            f"trace_replay_stream: RSS grew {rss_delta} KiB over the "
            f"{_REPLAY_RSS_BUDGET_KB} KiB budget while replaying {n} IOs "
            f"— streaming replay must not materialize the trace"
        )
    wl_stats = workload.stats
    perf = {
        "wall_clock_s": round(wall, 4),
        "events_processed": sim.events_processed,
        "events_per_sec": round(sim.events_processed / wall) if wall else 0,
        "completed_requests": submitted[0],
        "simulated_ios_per_sec": round(submitted[0] / wall) if wall else 0,
        "peak_rss_kb": _peak_rss_kb(),
        "replay_rss_delta_kb": rss_delta,
        "trace_records": n,
    }
    # "scheme"/"completed" match the fingerprint shape the campaign
    # diff loader recognises, even though no cache scheme runs here.
    stats = {
        "scheme": "none",
        "completed": submitted[0],
        "generated": wl_stats.generated,
        "reads": wl_stats.reads,
        "writes": wl_stats.writes,
        "finished": wl_stats.finished,
        "last_arrival_us": round(sim.now, 3),
    }
    return perf, stats, None


def _run_grid_fanout(
    config: SystemConfig, jobs: int, store: Optional[RunStore] = None
) -> tuple[dict, dict, Optional[str]]:
    t0 = time.perf_counter()
    grid = run_grid(PAPER_WORKLOADS, SCHEMES, config=config, max_workers=jobs)
    wall = time.perf_counter() - t0
    events = sum(r.events_processed for r in grid.values())
    completed = sum(r.completed for r in grid.values())
    perf = {
        "wall_clock_s": round(wall, 4),
        "events_processed": events,
        "events_per_sec": round(events / wall) if wall else 0,
        "completed_requests": completed,
        "simulated_ios_per_sec": round(completed / wall) if wall else 0,
        "peak_rss_kb": _peak_rss_kb(),
        "max_workers": jobs,
        "combinations": len(grid),
    }
    stats = {
        f"{wl}/{sc}": stats_fingerprint(r) for (wl, sc), r in sorted(grid.items())
    }
    return perf, stats, None


#: name -> factory(config, jobs, store) -> (perf dict, stats
#: fingerprint, store-key digest or None).  The single-run entries are
#: registered :class:`ScenarioSpec`s by the same name; ``grid_fanout``
#: is the parallel (workload × scheme) grid (not individually keyed).
SCENARIOS: dict[
    str,
    Callable[[SystemConfig, int, Optional[RunStore]], tuple[dict, dict, Optional[str]]],
] = {
    CANONICAL: lambda cfg, jobs, store=None: _run_single(CANONICAL, cfg, store),
    "consolidated3": lambda cfg, jobs, store=None: _run_single(
        "consolidated3", cfg, store
    ),
    "bootstorm_neighbors": lambda cfg, jobs, store=None: _run_single(
        "bootstorm_neighbors", cfg, store
    ),
    "consolidated3_partition": lambda cfg, jobs, store=None: _run_single(
        "consolidated3_partition", cfg, store
    ),
    "consolidated3_dynshare": lambda cfg, jobs, store=None: _run_single(
        "consolidated3_dynshare", cfg, store
    ),
    "grid_fanout": _run_grid_fanout,
    "trace_replay_stream": _run_trace_replay,
}

#: Scenarios the ``--profile`` pass skips: ``grid_fanout`` does its work
#: in child processes the profiler cannot see, and the replay benchmark
#: is not a registered :class:`ScenarioSpec` (profile.py resolves names
#: through the scenario registry).
_UNPROFILED = frozenset({"grid_fanout", "trace_replay_stream"})


def run_scenario(
    name: str,
    config: SystemConfig,
    jobs: int = 2,
    store: Optional[RunStore] = None,
) -> tuple[dict, dict]:
    """Run one named scenario; returns ``(perf, stats_fingerprint)``."""
    if name not in SCENARIOS:
        raise ValueError(f"unknown scenario {name!r}; choose from {sorted(SCENARIOS)}")
    perf, stats, _ = SCENARIOS[name](config, jobs, store)
    return perf, stats


def run_suite(
    quick: bool = False,
    seed: int = 7,
    jobs: int = 2,
    scenarios: Optional[Sequence[str]] = None,
    verbose: bool = True,
    store: Optional[RunStore] = None,
) -> dict:
    """Run the suite and return the ``BENCH_suite.json`` document.

    Every document carries a ``provenance`` block (repro version, git
    commit when available, per-scenario store keys) so stored benchmark
    runs are attributable and diffable.  With a ``store``, each single
    scenario's artifact is written through and the whole document is
    appended to the store's ``bench_history.jsonl`` — the BENCH
    trajectory accumulates across invocations instead of overwriting.
    """
    config = quick_config(seed) if quick else paper_config(seed)
    names = list(scenarios) if scenarios else list(SCENARIOS)
    prov = provenance()
    doc: dict = {
        "suite": "lbica-bench-suite",
        "config": "quick" if quick else "paper",
        "seed": seed,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "provenance": {
            **prov,  # repro_version / git_commit / created_at, one source
            "store": str(store.root) if store is not None else None,
            "store_keys": {},
        },
        "scenarios": {},
    }
    for name in names:
        if verbose:
            print(f"[suite] {name} ...", flush=True)
        perf, stats, digest = SCENARIOS[name](config, jobs, store)
        doc["scenarios"][name] = {"perf": perf, "stats": stats}
        doc["provenance"]["store_keys"][name] = digest
        if verbose:
            print(
                f"[suite]   {perf['wall_clock_s']:.3f}s, "
                f"{perf['events_per_sec']} events/s, "
                f"{perf['simulated_ios_per_sec']} simulated IOs/s, "
                f"peak RSS {perf['peak_rss_kb']} KiB",
                flush=True,
            )
    if store is not None:
        store.append_history(doc)
        if verbose:
            print(
                f"[suite] appended run #{len(store.history())} to "
                f"{store.history_path}",
                flush=True,
            )
    return doc


def _json_round_trip(obj: dict) -> dict:
    """Normalize through JSON so comparisons match on-disk goldens."""
    return json.loads(json.dumps(obj, sort_keys=True))


def extract_goldens(doc: dict) -> dict:
    """The golden-relevant slice of a suite document (stats only)."""
    return {
        "config": doc["config"],
        "seed": doc["seed"],
        "scenarios": {
            name: entry["stats"] for name, entry in doc["scenarios"].items()
        },
    }


def compare_goldens(doc: dict, golden: dict) -> list[str]:
    """Human-readable divergence list (empty = stats match the golden)."""
    problems: list[str] = []
    current = _json_round_trip(extract_goldens(doc))
    for key in ("config", "seed"):
        if current[key] != golden.get(key):
            problems.append(
                f"{key}: golden {golden.get(key)!r} vs current {current[key]!r}"
            )
    for name, want in golden.get("scenarios", {}).items():
        got = current["scenarios"].get(name)
        if got is None:
            problems.append(f"scenario {name}: missing from this run")
            continue
        if got != want:
            diverging = sorted(
                field
                for field in set(want) | set(got)
                if want.get(field) != got.get(field)
            )
            problems.append(f"scenario {name}: stats diverge in {diverging}")
    return problems


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        description="Run the unified benchmark suite and emit BENCH_suite.json."
    )
    parser.add_argument(
        "--quick", action="store_true", help="CI-scale configuration"
    )
    parser.add_argument("--seed", type=int, default=7, help="root seed (default 7)")
    parser.add_argument(
        "--jobs", type=int, default=2, help="workers for grid_fanout (default 2)"
    )
    parser.add_argument(
        "--scenarios",
        nargs="+",
        default=None,
        choices=sorted(SCENARIOS),
        help="scenario subset (default: all)",
    )
    parser.add_argument(
        "--out",
        default="BENCH_suite.json",
        help="result file path (default: ./BENCH_suite.json)",
    )
    parser.add_argument(
        "--store",
        default=None,
        metavar="DIR",
        help=(
            "run-store directory: write each scenario's artifact through "
            "and append this document to the store's bench_history.jsonl "
            "(the accumulating BENCH trajectory)"
        ),
    )
    parser.add_argument(
        "--golden",
        default=None,
        help="compare stats fingerprints against this golden file; exit 1 on divergence",
    )
    parser.add_argument(
        "--profile",
        default=None,
        metavar="DIR",
        help=(
            "after the suite, re-run each selected single-run scenario "
            "under benchmarks/profile.py and drop the pstats/collapsed/"
            "table artifacts into DIR (grid_fanout is skipped: its work "
            "happens in child processes the profiler cannot see)"
        ),
    )
    parser.add_argument(
        "--update-golden",
        default=None,
        metavar="PATH",
        help="write the current stats fingerprints as the new golden file",
    )
    args = parser.parse_args(argv)

    doc = run_suite(
        quick=args.quick,
        seed=args.seed,
        jobs=args.jobs,
        scenarios=args.scenarios,
        store=RunStore(args.store) if args.store else None,
    )
    out_path = Path(args.out)
    out_path.write_text(json.dumps(doc, indent=1, sort_keys=True) + "\n")
    print(f"[suite] wrote {out_path}")

    if args.update_golden:
        golden_path = Path(args.update_golden)
        golden_path.parent.mkdir(parents=True, exist_ok=True)
        golden_path.write_text(
            json.dumps(extract_goldens(doc), indent=1, sort_keys=True) + "\n"
        )
        print(f"[suite] wrote golden {golden_path}")

    if args.golden:
        golden = json.loads(Path(args.golden).read_text())
        problems = compare_goldens(doc, golden)
        if problems:
            for p in problems:
                print(f"[suite] GOLDEN DIVERGENCE: {p}", file=sys.stderr)
            return 1
        print(f"[suite] stats match golden {args.golden}")

    if args.profile:
        # profile.py owns the cProfile/pstats imports (simlint SL009); it
        # is loaded by path under a non-clashing name because `profile`
        # would shadow the stdlib module cProfile depends on.
        import importlib.util

        spec = importlib.util.spec_from_file_location(
            "bench_profile", Path(__file__).resolve().parent / "profile.py"
        )
        assert spec is not None and spec.loader is not None
        bench_profile = importlib.util.module_from_spec(spec)
        sys.modules["bench_profile"] = bench_profile
        spec.loader.exec_module(bench_profile)
        profile_dir = Path(args.profile)
        for name in args.scenarios or sorted(SCENARIOS):
            if name in _UNPROFILED:
                continue
            print(f"[suite] profiling {name} ...", flush=True)
            result = bench_profile.profile_scenario(
                name, quick=args.quick, seed=args.seed
            )
            for kind, path in sorted(result.write(profile_dir).items()):
                print(f"[suite]   {kind}: {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
