#!/usr/bin/env python3
"""Deterministic cProfile harness for any registry scenario.

Runs one registered scenario under :mod:`cProfile` and emits three
artifacts into ``--out`` (default ``benchmarks/profiles/``):

- ``<scenario>.pstats`` — the raw profiler dump, loadable with
  ``pstats.Stats`` or snakeviz-style viewers.
- ``<scenario>.collapsed`` — folded-stack lines (``frame;frame count``)
  in the format flamegraph tools consume.  cProfile records a call
  *graph* (caller → callee edges), not full stacks, so the fold is the
  standard two-level approximation: one line per observed caller/callee
  edge weighted by the callee's inline time on that edge, plus one line
  per root frame.  That is exactly the resolution cProfile has; deeper
  stacks would be invented, not measured.
- ``<scenario>.txt`` — the top-frames table that is also printed.

The profiled wall clock is *not* comparable to ``benchmarks/suite.py``
numbers — cProfile's tracing hooks inflate this simulator's run loop
roughly 4×.  Use the suite for throughput claims and this harness to see
where the time goes.

This file is the repo's only sanctioned import site for ``cProfile`` /
``pstats`` (simlint SL009): profiling stays in the harness, never in
library code, so the hot paths carry no instrumentation hooks.

Usage::

    PYTHONPATH=src python benchmarks/profile.py fig4_single_vm --quick
    PYTHONPATH=src python benchmarks/profile.py consolidated3 \
        --sort cumtime --top 40 --out /tmp/profiles
    PYTHONPATH=src python benchmarks/suite.py --quick --profile DIR
"""

from __future__ import annotations

import argparse
import sys
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Sequence

_REPO_ROOT = Path(__file__).resolve().parent.parent

# Running `python benchmarks/profile.py` puts benchmarks/ first on
# sys.path, where this file would shadow the stdlib `profile` module
# that cProfile itself imports.  Drop that entry before importing
# cProfile (suite.py loads this file under the name `bench_profile` via
# importlib for the same reason).
if sys.path and Path(sys.path[0] or ".").resolve() == _REPO_ROOT / "benchmarks":
    sys.path.pop(0)

import cProfile  # noqa: E402  # simlint: ignore[SL009] (sanctioned site)
import pstats  # noqa: E402  # simlint: ignore[SL009] (sanctioned site)

try:  # allow `python benchmarks/profile.py` without PYTHONPATH=src
    import repro  # noqa: F401,E402
except ImportError:  # pragma: no cover - path bootstrap
    sys.path.insert(0, str(_REPO_ROOT / "src"))

from repro.config import SystemConfig, paper_config, quick_config  # noqa: E402
from repro.scenario import get_scenario, scenario_descriptions  # noqa: E402

DEFAULT_OUT = _REPO_ROOT / "benchmarks" / "profiles"

#: A frame key as pstats stores it: (filename, lineno, funcname).
_Frame = tuple[str, int, str]


def _frame_label(frame: _Frame) -> str:
    """``module.py:123:func`` with the repo prefix stripped."""
    filename, lineno, name = frame
    if filename == "~":  # C builtins have no file
        return name
    path = filename
    for root in (str(_REPO_ROOT) + "/", "src/"):
        if path.startswith(root):
            path = path[len(root) :]
    return f"{path}:{lineno}:{name}"


@dataclass
class ProfileResult:
    """One profiled scenario run plus its rendered artifacts."""

    scenario: str
    quick: bool
    seed: int
    wall_s: float
    events_processed: int
    completed_requests: int
    top_table: str
    collapsed: list[str]
    stats: pstats.Stats

    def write(self, out_dir: Path) -> dict[str, Path]:
        """Write the three artifacts; returns ``{kind: path}``."""
        out_dir.mkdir(parents=True, exist_ok=True)
        paths = {
            "pstats": out_dir / f"{self.scenario}.pstats",
            "collapsed": out_dir / f"{self.scenario}.collapsed",
            "table": out_dir / f"{self.scenario}.txt",
        }
        self.stats.dump_stats(str(paths["pstats"]))
        paths["collapsed"].write_text("\n".join(self.collapsed) + "\n")
        paths["table"].write_text(self.top_table + "\n")
        return paths


def collapse_stats(stats: pstats.Stats) -> list[str]:
    """Fold a pstats call graph into flamegraph collapsed-stack lines.

    Weights are integer microseconds of *inline* time (tottime), split
    across caller edges in proportion to the per-edge tottime cProfile
    already attributes.  Frames cProfile saw only as roots (no caller)
    fold to a single-frame line.  Total folded weight equals total
    tottime, so flamegraph widths are faithful to measured inline time.
    """
    lines: list[str] = []
    entries = stats.stats.items()  # {frame: (cc, nc, tt, ct, callers)}
    for frame, (_cc, _nc, tottime, _ct, callers) in entries:
        label = _frame_label(frame)
        if callers:
            for caller, edge in sorted(callers.items()):
                weight = round(edge[2] * 1_000_000)  # per-edge tottime
                if weight > 0:
                    lines.append(f"{_frame_label(caller)};{label} {weight}")
        else:
            weight = round(tottime * 1_000_000)
            if weight > 0:
                lines.append(f"{label} {weight}")
    lines.sort()
    return lines


def top_frames_table(stats: pstats.Stats, top: int = 25, sort: str = "tottime") -> str:
    """Fixed-width top-``top`` frames table sorted by ``sort``."""
    key = {"tottime": 2, "cumtime": 3}[sort]
    rows = sorted(
        (
            (nc, tt, ct, _frame_label(frame))
            for frame, (_cc, nc, tt, ct, _callers) in stats.stats.items()
        ),
        key=lambda row: row[key - 1],
        reverse=True,
    )[:top]
    header = f"{'ncalls':>12} {'tottime':>10} {'cumtime':>10}  function"
    out = [header, "-" * len(header)]
    for nc, tt, ct, label in rows:
        out.append(f"{nc:>12} {tt:>10.4f} {ct:>10.4f}  {label}")
    return "\n".join(out)


def profile_scenario(
    name: str,
    config: Optional[SystemConfig] = None,
    *,
    quick: bool = False,
    seed: int = 7,
    top: int = 25,
    sort: str = "tottime",
) -> ProfileResult:
    """Run registry scenario ``name`` under cProfile.

    ``config`` wins when given; otherwise ``quick``/``seed`` pick
    :func:`quick_config` or :func:`paper_config` — the same configs the
    benchmark suite runs, so profiles answer for the suite's hot path.
    """
    spec = get_scenario(name)  # raises KeyError-style on unknown names
    if config is None:
        config = quick_config(seed) if quick else paper_config(seed)
    profiler = cProfile.Profile()
    t0 = time.perf_counter()
    profiler.enable()
    try:
        result = spec.run(config=config)
    finally:
        profiler.disable()
    wall = time.perf_counter() - t0
    stats = pstats.Stats(profiler)
    return ProfileResult(
        scenario=name,
        quick=quick,
        seed=seed,
        wall_s=wall,
        events_processed=result.events_processed,
        completed_requests=result.completed,
        top_table=top_frames_table(stats, top=top, sort=sort),
        collapsed=collapse_stats(stats),
        stats=stats,
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "scenario",
        help="registered scenario name (see --list)",
        nargs="?",
    )
    parser.add_argument(
        "--list", action="store_true", help="list registered scenarios and exit"
    )
    parser.add_argument(
        "--quick", action="store_true", help="profile the quick config (CI-sized)"
    )
    parser.add_argument("--seed", type=int, default=7, help="config seed (default 7)")
    parser.add_argument(
        "--top", type=int, default=25, help="rows in the printed table (default 25)"
    )
    parser.add_argument(
        "--sort",
        choices=("tottime", "cumtime"),
        default="tottime",
        help="table sort key (default tottime)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=DEFAULT_OUT,
        help=f"artifact directory (default {DEFAULT_OUT})",
    )
    args = parser.parse_args(argv)

    descriptions = scenario_descriptions()
    if args.list:
        for name in sorted(descriptions):
            print(f"{name:28s} {descriptions[name]}")
        return 0
    if args.scenario is None:
        parser.error("scenario name required (or --list)")
    if args.scenario not in descriptions:
        parser.error(
            f"unknown scenario {args.scenario!r}; known: "
            + ", ".join(sorted(descriptions))
        )

    mode = "quick" if args.quick else "paper"
    print(f"[profile] {args.scenario} ({mode} config, seed {args.seed}) ...")
    result = profile_scenario(
        args.scenario, quick=args.quick, seed=args.seed, top=args.top, sort=args.sort
    )
    paths = result.write(args.out)
    rate = result.events_processed / result.wall_s if result.wall_s else 0.0
    print(
        f"[profile] {result.events_processed} events, "
        f"{result.completed_requests} requests in {result.wall_s:.3f}s "
        f"({rate:,.0f} ev/s under the profiler — see module note)"
    )
    print()
    print(result.top_table)
    print()
    for kind, path in sorted(paths.items()):
        print(f"[profile] wrote {kind}: {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
