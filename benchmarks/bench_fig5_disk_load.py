"""Fig. 5 bench: regenerate the disk-subsystem load curves and verify shape.

LBICA must *shift* load onto the disk (its disk curve rises where its
cache curve falls) and SIB's write-through mirroring must keep the disk
the most loaded of the three schemes on write-heavy workloads.
"""

from repro.experiments.fig5 import generate_fig5


def test_fig5_disk_load(benchmark, paper_runner):
    fig = benchmark.pedantic(
        generate_fig5, args=(paper_runner,), rounds=1, iterations=1
    )
    print()
    print(fig.ascii_chart)
    print(fig.checks_table())
    assert fig.all_passed, fig.checks_table()
