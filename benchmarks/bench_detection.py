"""Detection bench: burst-detection quality and disk-headroom sweep.

Beyond the paper's figures: scores LBICA's Eq. 1 detector against the
workloads' scripted burst windows (recall must be total — a missed burst
means an unbalanced cache), and sweeps the disk subsystem's spindle
count to quantify how much headroom the bypass policies exploit.
"""

from repro.analysis.metrics import detection_quality
from repro.experiments.ablation import run_disk_headroom_sweep
from repro.experiments.runner import PAPER_WORKLOADS
from repro.experiments.system import ExperimentSystem


def test_burst_detection_quality(benchmark, paper_runner):
    def score_all():
        out = {}
        for workload in PAPER_WORKLOADS:
            result = paper_runner.run(workload, "lbica")
            scripted = ExperimentSystem.build(
                workload, "lbica", paper_runner.config
            ).workload.burst_intervals()
            detected = [d.interval_index for d in result.lbica_decisions if d.burst]
            out[workload] = detection_quality(detected, scripted, slack=30)
        return out

    scores = benchmark.pedantic(score_all, rounds=1, iterations=1)
    print()
    for workload, q in scores.items():
        print(
            f"  {workload:6s} precision={q.precision:.2f} recall={q.recall:.2f} "
            f"(tp={q.true_positives}, fp={q.false_positives})"
        )
        assert q.recall == 1.0, f"{workload}: scripted burst missed"
        assert q.precision > 0.5, f"{workload}: too many spurious detections"


def test_disk_headroom_sweep(benchmark):
    from repro.config import paper_config

    result = benchmark.pedantic(
        run_disk_headroom_sweep,
        args=("web",),
        kwargs={"config": paper_config(), "disk_counts": (1, 2, 4)},
        rounds=1,
        iterations=1,
    )
    print()
    print(result.table())
    rows = result.rows
    # more spindles must never make LBICA slower
    lat1 = rows["lbica, 1 spindle(s)"]["mean_latency_us"]
    lat4 = rows["lbica, 4 spindle(s)"]["mean_latency_us"]
    assert lat4 <= lat1 * 1.1
