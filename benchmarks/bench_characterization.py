"""Characterization bench: §IV-C's measured queue mixes + classifier speed.

Validates that the paper's four reported in-queue mixes map to the groups
the paper assigns, and measures the classifier's per-snapshot cost (it
runs on every monitoring tick, so it must be cheap — this was one of
LBICA's advantages over SIB's per-request estimation).
"""

from collections import Counter

from repro.core.characterization import QueueMix, WorkloadCharacterizer, WorkloadGroup
from repro.io.request import OpTag

#: (label, mix, expected group) — the paper's §IV-C snapshots.
PAPER_MIXES = [
    (
        "tpcc@3  R44.0 W2.2  P51.0 E2.8",
        QueueMix(r=0.440, w=0.022, p=0.510, e=0.028, total=1000),
        WorkloadGroup.RANDOM_READ,
    ),
    (
        "mail@23 R13.9 W70.4 P3.9  E11.8",
        QueueMix(r=0.139, w=0.704, p=0.039, e=0.118, total=1000),
        WorkloadGroup.MIXED_RW,
    ),
    (
        "mail@134 ~90% W+E",
        QueueMix(r=0.050, w=0.600, p=0.050, e=0.300, total=1000),
        None,  # any Group-3 variant
    ),
    (
        "web@1   R17.9 W63.8 P7.9  E10.4",
        QueueMix(r=0.179, w=0.638, p=0.079, e=0.104, total=1000),
        WorkloadGroup.MIXED_RW,
    ),
]


def test_paper_mixes_classify_correctly(benchmark):
    clf = WorkloadCharacterizer()

    def classify_all():
        return [clf.classify(mix) for _, mix, _ in PAPER_MIXES]

    groups = benchmark(classify_all)
    print()
    for (label, _, expected), group in zip(PAPER_MIXES, groups):
        print(f"  {label:34s} -> {group.value}")
        if expected is None:
            assert group.is_write_intensive
        else:
            assert group is expected


def test_classifier_throughput_on_raw_counts(benchmark):
    """Classifier cost on raw tag counters (the controller's hot path)."""
    clf = WorkloadCharacterizer()
    snapshots = [
        Counter(
            {
                OpTag.READ: (17 * i) % 211,
                OpTag.WRITE: (31 * i) % 193,
                OpTag.PROMOTE: (13 * i) % 101,
                OpTag.EVICT: (7 * i) % 53,
            }
        )
        for i in range(256)
    ]

    def classify_batch():
        return [clf.classify_counts(c) for c in snapshots]

    results = benchmark(classify_batch)
    assert len(results) == 256
