"""Shared benchmark fixtures.

The full-scale grid (3 workloads × 3 schemes at paper scale) is simulated
once per session and memoized; figure benches measure regeneration on top
of it, and one dedicated bench measures the raw grid simulation itself.
"""

from __future__ import annotations

import pytest

from repro.config import paper_config
from repro.experiments.runner import ExperimentRunner


@pytest.fixture(scope="session")
def paper_runner() -> ExperimentRunner:
    """Session-scoped memoizing runner at paper scale (seed 7)."""
    runner = ExperimentRunner(paper_config())
    runner.run_many()  # pre-simulate the 3×3 grid once
    return runner
