"""Fig. 6 bench: regenerate LBICA's detection/characterization timeline.

Asserts the paper's policy-assignment sequences: TPC-C → WO; mail → RO,
then WO, then WB (with tail bypass); web → RO at the first burst.
"""

from repro.experiments.fig6 import generate_fig6


def test_fig6_policy_timeline(benchmark, paper_runner):
    fig = benchmark.pedantic(
        generate_fig6, args=(paper_runner,), rounds=1, iterations=1
    )
    print()
    print(fig.ascii_chart)
    print(fig.checks_table())
    assert fig.all_passed, fig.checks_table()

    timelines = fig.extra["timelines"]
    assert timelines["tpcc"][0][1] == "WO"
    mail_policies = [p for _, p, _, _ in timelines["mail"]]
    assert mail_policies[:3] == ["RO", "WO", "WB"]
    assert timelines["web"][0][1] == "RO"

    # the write-intensive (Group 3) phase must actually shed queue tail
    lbica = paper_runner.run("mail", "lbica")
    assert sum(d.bypassed for d in lbica.lbica_decisions) > 0
