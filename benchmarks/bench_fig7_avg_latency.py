"""Fig. 7 bench: regenerate the average-latency bars and verify ordering.

WB > SIB > LBICA on every workload; largest LBICA-vs-SIB gain on TPC-C,
smallest on mail — the paper's §IV-D observations.
"""

from repro.experiments.fig7 import generate_fig7


def test_fig7_avg_latency(benchmark, paper_runner):
    fig = benchmark.pedantic(
        generate_fig7, args=(paper_runner,), rounds=1, iterations=1
    )
    print()
    print(fig.ascii_chart)
    print(fig.checks_table())
    assert fig.all_passed, fig.checks_table()

    bars = fig.extra["bars"]
    for workload in ("TPCC", "MAIL", "WEB"):
        assert bars[workload]["WB"] > bars[workload]["LBICA"]
        assert bars[workload]["SIB"] > bars[workload]["LBICA"]
