"""Fig. 4 bench: regenerate the I/O-cache load curves and verify shape.

Prints the same per-interval series the paper plots (as an ASCII chart)
and asserts the figure's qualitative properties: WB highest, SIB between,
LBICA lowest on the cache side.
"""

from repro.experiments.fig4 import generate_fig4


def test_fig4_cache_load(benchmark, paper_runner):
    fig = benchmark.pedantic(
        generate_fig4, args=(paper_runner,), rounds=1, iterations=1
    )
    print()
    print(fig.ascii_chart)
    print(fig.checks_table())
    assert fig.all_passed, fig.checks_table()
    # every panel covers the paper's full interval axis
    assert len(fig.series["tpcc"][0]) == 200
    assert len(fig.series["mail"][0]) == 200
    assert len(fig.series["web"][0]) == 175
