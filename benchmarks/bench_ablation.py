"""Ablation bench: isolate LBICA's design choices (see DESIGN.md).

Runs the ablation grid on the mail workload (the only one exercising all
three policy transitions) and checks:

- adaptive LBICA beats every fixed single policy it could have pinned;
- the strict WT+WO SIB (Kim et al.'s literal design) is no better than
  the read-promoting WT variant we default to;
- LBICA's gain is replacement-policy-agnostic.
"""

from dataclasses import replace

from repro.config import paper_config
from repro.experiments.ablation import run_ablations
from repro.experiments.system import ExperimentSystem


def test_ablation_grid(benchmark):
    result = benchmark.pedantic(
        run_ablations,
        args=("mail",),
        kwargs={
            "config": paper_config(),
            "include_replacement_sweep": False,
            "include_margin_sweep": False,
        },
        rounds=1,
        iterations=1,
    )
    print()
    print(result.table())
    rows = result.rows
    adaptive = rows["lbica (adaptive)"]["mean_latency_us"]
    assert adaptive < rows["fixed WB"]["mean_latency_us"]
    assert adaptive < rows["fixed WT"]["mean_latency_us"]
    # fixed WO caches every write at cliff cost: adaptive must beat it
    assert adaptive < rows["fixed WO"]["mean_latency_us"]
    # strict WT+WO never serves read-after-read: not better than plain WT
    assert (
        rows["sib (strict WT+WO)"]["mean_latency_us"]
        >= rows["sib (default WT)"]["mean_latency_us"] * 0.9
    )


def test_replacement_policy_sweep(benchmark):
    """LBICA's cache-load cut must hold for every replacement policy."""
    config = paper_config()

    def sweep():
        out = {}
        for repl in ("lru", "fifo", "clock", "lfu"):
            cfg = replace(config, replacement=repl)
            lbica = ExperimentSystem.build("web", "lbica", cfg).run()
            wb = ExperimentSystem.build("web", "wb", cfg).run()
            out[repl] = (wb.mean_latency, lbica.mean_latency)
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    for repl, (wb_lat, lbica_lat) in results.items():
        print(f"  {repl:6s} WB {wb_lat:9.0f}µs → LBICA {lbica_lat:9.0f}µs")
        assert lbica_lat < wb_lat, repl
