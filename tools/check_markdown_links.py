#!/usr/bin/env python3
"""Check that intra-repo markdown links resolve to real files.

Scans markdown files for inline links (``[text](target)``), skips
external targets (``http(s)://``, ``mailto:``) and pure fragments
(``#section``), and verifies every remaining target exists relative to
the linking file (path fragments like ``docs/FILE.md#anchor`` are
checked against the file part only; anchor validity is out of scope).

Usage::

    python tools/check_markdown_links.py README.md docs/*.md
    python tools/check_markdown_links.py          # the default doc set

Importable: :func:`broken_links` powers the tier-1 docs test; the CLI
exits 1 and lists every broken link.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import Iterable, Sequence

REPO_ROOT = Path(__file__).resolve().parent.parent

#: The documentation set checked when the CLI gets no arguments.
DEFAULT_DOCS = (
    "README.md",
    "docs/ARCHITECTURE.md",
    "docs/TRACES.md",
)

#: Inline markdown links: ``[text](target)``.  Reference-style links and
#: autolinks are not used in this repo's docs.
_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

_EXTERNAL = ("http://", "https://", "mailto:")


def broken_links(paths: Iterable[Path]) -> list[str]:
    """``"file: target"`` for every intra-repo link that does not resolve."""
    problems: list[str] = []
    for path in paths:
        text = path.read_text(encoding="utf-8")
        for match in _LINK_RE.finditer(text):
            target = match.group(1)
            if target.startswith(_EXTERNAL) or target.startswith("#"):
                continue
            file_part = target.split("#", 1)[0]
            if not file_part:
                continue
            resolved = (path.parent / file_part).resolve()
            if not resolved.exists():
                problems.append(f"{path}: {target}")
    return problems


def main(argv: Sequence[str] | None = None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    paths = [Path(a) for a in args] if args else [REPO_ROOT / d for d in DEFAULT_DOCS]
    missing = [p for p in paths if not p.is_file()]
    if missing:
        for p in missing:
            print(f"no such markdown file: {p}", file=sys.stderr)
        return 2
    problems = broken_links(paths)
    for problem in problems:
        print(f"BROKEN LINK {problem}", file=sys.stderr)
    if problems:
        return 1
    print(f"checked {len(paths)} file(s): all intra-repo links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
