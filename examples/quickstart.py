#!/usr/bin/env python3
"""Quickstart: run LBICA on the TPC-C burst workload.

Builds the full simulated stack (SSD cache + HDD disk subsystem +
EnhanceIO-like cache + LBICA), replays the paper's TPC-C timeline (a
random-read burst starting at interval 3), and prints what LBICA saw and
did: the detected burst, the R/W/P/E queue mix, and the WO policy
assignment that deflates the cache queue.

Run:
    python examples/quickstart.py
"""

from repro import ExperimentSystem, paper_config


def main() -> None:
    config = paper_config(seed=7)
    print("Building tpcc/lbica at paper scale (200 intervals)...")
    system = ExperimentSystem.build("tpcc", "lbica", config)
    result = system.run()

    print()
    print(result.summary())
    print()
    print("LBICA decisions at burst intervals:")
    for decision in result.lbica_decisions:
        if decision.burst:
            mix = ", ".join(f"{k}:{v:.0%}" for k, v in decision.mix.items())
            assigned = (
                f" -> assigned {decision.policy_assigned.value}"
                if decision.policy_assigned
                else ""
            )
            print(
                f"  interval {decision.interval_index:3d}: "
                f"cache_Qtime={decision.cache_qtime / 1000:.1f}ms "
                f"disk_Qtime={decision.disk_qtime / 1000:.1f}ms "
                f"group={decision.group.value if decision.group else '-'} "
                f"[{mix}]{assigned}"
            )

    print()
    print("Write-policy timeline:")
    for change in result.policy_log:
        interval = int(change.time / config.interval_us)
        print(f"  interval {interval:3d}: {change.policy.value}")

    series = result.cache_load_series()
    peak = max(series)
    after = max(series[len(series) // 2 :])
    print()
    print(f"Peak cache queue time: {peak / 1000:.1f}ms")
    print(f"Late-run peak (after WO assignment): {after / 1000:.1f}ms")
    print(f"Read hit ratio: {result.cache_stats['read_hit_ratio']:.1%}")


if __name__ == "__main__":
    main()
