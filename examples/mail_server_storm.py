#!/usr/bin/env python3
"""Domain scenario: a mail server's day, through LBICA's eyes.

The mail-server workload is the paper's richest timeline (Fig. 6b): a
mixed read-write delivery burst at interval ~23 (LBICA answers with RO),
a mailbox-scan read storm at ~128 (WO), and a delivery storm at ~134
(back to WB, shedding the SSD queue tail to the disk).

This example runs that timeline under all three schemes and renders the
cache-load curves side by side, so you can watch WB drown, SIB tread
water, and LBICA adapt.

Run:
    python examples/mail_server_storm.py
"""

from repro import paper_config
from repro.analysis.ascii_plot import ascii_line_chart
from repro.experiments.runner import ExperimentRunner


def main() -> None:
    runner = ExperimentRunner(paper_config(seed=7), verbose=True)
    results = {s: runner.run("mail", s) for s in ("wb", "sib", "lbica")}

    print()
    print(
        ascii_line_chart(
            {s.upper(): r.cache_load_series() for s, r in results.items()},
            title="mail server: I/O cache load (max queue latency per interval, µs)",
            width=100,
            height=16,
            y_label="µs",
        )
    )

    lbica = results["lbica"]
    print()
    print("LBICA's policy transitions:")
    for change in lbica.policy_log:
        interval = int(change.time / runner.config.interval_us)
        print(f"  interval {interval:3d}: -> {change.policy.value}")

    bypassed_ops = sum(d.bypassed for d in lbica.lbica_decisions)
    print()
    print(f"Tail-bypassed operations during the delivery storm: {bypassed_ops}")
    print()
    print("Mean latency (µs):")
    for scheme, result in results.items():
        print(f"  {scheme.upper():6s} {result.mean_latency:10.1f}")
    print()
    print(
        "Note the paper's own caveat (§IV-D): mail gains least from LBICA\n"
        "because the RO span serves ~70% of requests (writes) from the disk."
    )


if __name__ == "__main__":
    main()
