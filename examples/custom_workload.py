#!/usr/bin/env python3
"""Build a custom workload against the public API and let LBICA handle it.

Shows the workload-authoring surface: phase scripts, address patterns,
backpressure, and cache warm-sets.  The scenario is a nightly analytics
job: a quiet OLTP baseline, a sudden sequential table scan (Group 4 —
LBICA should leave WB alone: the disk serves scans natively), then a
random-write checkpoint storm (Group 3 — WB plus tail bypass).

Run:
    python examples/custom_workload.py
"""

from repro import ExperimentSystem, paper_config
from repro.workloads.access_patterns import (
    HotColdPattern,
    SequentialPattern,
    UniformPattern,
)
from repro.workloads.base import PhaseSpec, Workload


def build_nightly_batch(interval_us: float, cache_blocks: int) -> Workload:
    """A three-act nightly batch job."""
    oltp_reads = HotColdPattern(
        hot_start=0,
        hot_span=int(cache_blocks * 0.5),
        cold_start=cache_blocks * 32,
        cold_span=cache_blocks * 16,
        hot_prob=0.95,
    )
    table_scan = SequentialPattern(cache_blocks * 64, cache_blocks * 64, stride=8)
    checkpoint = UniformPattern(cache_blocks * 8, cache_blocks * 12)

    phases = [
        PhaseSpec(
            label="evening-oltp",
            n_intervals=20,
            rate_iops=1200.0,
            write_frac=0.05,
            pattern_read=oltp_reads,
        ),
        PhaseSpec(
            label="table-scan",
            n_intervals=20,
            rate_iops=1500.0,
            write_frac=0.0,
            pattern_read=table_scan,
            size_blocks=8,
            burst=True,
        ),
        PhaseSpec(
            label="checkpoint-storm",
            n_intervals=20,
            rate_iops=700.0,
            write_frac=0.95,
            pattern_read=oltp_reads,
            pattern_write=checkpoint,
            burst=True,
        ),
        PhaseSpec(
            label="overnight-idle",
            n_intervals=20,
            rate_iops=300.0,
            write_frac=0.10,
            pattern_read=oltp_reads,
        ),
    ]
    return Workload(
        "nightly_batch",
        phases,
        interval_us,
        max_outstanding=256,
        warm_blocks=range(int(cache_blocks * 0.5)),
    )


def main() -> None:
    config = paper_config(seed=11)
    workload = build_nightly_batch(config.interval_us, config.cache_blocks)
    system = ExperimentSystem(workload, "lbica", config)
    result = system.run()

    print(result.summary())
    print()
    print("Phase script:")
    start = 0
    for phase in workload.phases:
        print(
            f"  intervals {start:3d}-{start + phase.n_intervals - 1:3d}  "
            f"{phase.label:18s} {phase.rate_iops:6.0f} IOPS, "
            f"{phase.write_frac:.0%} writes{'  [burst]' if phase.burst else ''}"
        )
        start += phase.n_intervals

    print()
    print("LBICA's reactions:")
    for decision in result.lbica_decisions:
        if decision.policy_assigned or (decision.burst and decision.bypassed):
            print(
                f"  interval {decision.interval_index:3d}: "
                f"group={decision.group.value if decision.group else '-':28s} "
                f"policy={decision.policy_active.value} "
                f"bypassed={decision.bypassed}"
            )
    total_bypassed = sum(d.bypassed for d in result.lbica_decisions)
    print()
    print(f"Total tail-bypassed ops: {total_bypassed}")
    print(f"Mean latency: {result.mean_latency:.1f}µs")


if __name__ == "__main__":
    main()
