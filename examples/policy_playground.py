#!/usr/bin/env python3
"""Policy playground: what each fixed write policy costs on each group.

Pins each of WB / WT / RO / WO for a whole run on each of the paper's
four characterization groups (random read, mixed read-write, random
write, sequential read) and prints the latency matrix next to adaptive
LBICA — making Section III-C's assignment table empirically visible:
the adaptive scheme tracks the column minimum of every row.

Run:
    python examples/policy_playground.py
"""

from repro import ExperimentSystem, WritePolicy, paper_config
from repro.analysis.report import format_table
from repro.experiments.system import WORKLOADS


GROUP_WORKLOADS = ("random_read", "mixed_rw", "random_write", "seq_read")


def run_fixed(workload_name: str, policy: WritePolicy, config) -> float:
    system = ExperimentSystem.build(workload_name, "wb", config)
    system.controller.set_policy(policy)
    return system.run().mean_latency


def run_lbica(workload_name: str, config) -> float:
    return ExperimentSystem.build(workload_name, "lbica", config).run().mean_latency


def main() -> None:
    config = paper_config(seed=5)
    policies = (WritePolicy.WB, WritePolicy.WT, WritePolicy.RO, WritePolicy.WO)

    matrix: dict[str, dict] = {}
    rows = []
    for workload_name in GROUP_WORKLOADS:
        assert workload_name in WORKLOADS
        print(f"running {workload_name} ...", flush=True)
        fixed = {p: run_fixed(workload_name, p, config) for p in policies}
        adaptive = run_lbica(workload_name, config)
        matrix[workload_name] = {**{p.value: fixed[p] for p in policies}, "LBICA": adaptive}
        rows.append(
            (
                workload_name,
                *(f"{fixed[p]:.0f}" for p in policies),
                f"{adaptive:.0f}",
            )
        )

    # minimax: the worst case each column suffers across groups
    columns = [p.value for p in policies] + ["LBICA"]
    worst = {c: max(matrix[w][c] for w in GROUP_WORKLOADS) for c in columns}
    rows.append(("WORST CASE", *(f"{worst[c]:.0f}" for c in columns)))

    print()
    print(
        format_table(
            ["workload", "WB", "WT", "RO", "WO", "LBICA"],
            rows,
            title="mean latency (µs) by pinned policy vs adaptive LBICA",
        )
    )
    print()
    assert worst["LBICA"] == min(worst.values()), (
        "adaptive LBICA should have the best worst-case across groups"
    )
    print(
        "Every fixed policy is catastrophic on at least one group (see the\n"
        "WORST CASE row); adaptive LBICA is the minimax choice — the paper's\n"
        "core argument for assigning the policy at run time (Section III-C)."
    )


if __name__ == "__main__":
    main()
